// Property tests for the streaming flow table's lifecycle and eviction
// semantics, driven by hand-built WireRecords (shards=1 so LRU order is
// the push order). Covers the contracts DESIGN.md §10 states:
//   - the LRU cap is never exceeded (peak_active_flows <= cap);
//   - under cap pressure, flows whose first slow start has closed are
//     evicted before flows still in slow start;
//   - a flow is force-dropped only when no slow-start-complete victim
//     exists, and the drop is tallied as evicted_forced;
//   - a 4-tuple reused after a completed FIN handshake starts a fresh
//     flow (two reports, not one merged flow);
//   - idle flows are evicted on capture-time gaps, and evicted flows
//     still produce reports.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/seq_unwrap.h"
#include "core/analyzer.h"
#include "obs/metrics.h"
#include "sim/time.h"
#include "stream/stream.h"

namespace ccsig::stream {
namespace {

sim::FlowKey key_for(std::uint32_t i) {
  return sim::FlowKey{10, 20, static_cast<sim::Port>(5001 + 2 * i),
                      static_cast<sim::Port>(5002 + 2 * i)};
}

analysis::WireRecord data(const sim::FlowKey& key, sim::Time t,
                          std::uint32_t seq, std::uint32_t payload,
                          bool fin = false) {
  analysis::WireRecord w;
  w.time = t;
  w.key = key;
  w.seq32 = seq;
  w.payload_bytes = payload;
  w.flags.fin = fin;
  return w;
}

analysis::WireRecord ack(const sim::FlowKey& data_key, sim::Time t,
                         std::uint32_t acked, bool fin = false) {
  analysis::WireRecord w;
  w.time = t;
  w.key = data_key.reversed();
  w.seq32 = 1;
  w.ack32 = acked;
  w.flags.ack = true;
  w.flags.fin = fin;
  return w;
}

StreamConfig one_shard(std::size_t cap) {
  StreamConfig cfg;
  cfg.jobs = 1;
  cfg.shards = 1;
  cfg.max_active_flows = cap;
  return cfg;
}

TEST(StreamFlowTable, LruCapIsNeverExceeded) {
  const FlowAnalyzer analyzer;
  StreamEngine engine(analyzer, one_shard(4));

  // 16 concurrent flows, each pushing a data segment per round: resident
  // count would be 16 without the cap.
  constexpr std::uint32_t kFlows = 16;
  sim::Time t = 0;
  for (std::uint32_t round = 0; round < 8; ++round) {
    for (std::uint32_t f = 0; f < kFlows; ++f) {
      engine.push(data(key_for(f), t, 1 + 1000 * round, 1000));
      engine.push(ack(key_for(f), t + sim::kMillisecond,
                      1 + 1000 * (round + 1)));
      t += 2 * sim::kMillisecond;
    }
  }
  const auto reports = engine.finish();
  const StreamStats& st = engine.stats();

  EXPECT_LE(st.peak_active_flows, 4u);
  // None of these flows ever retransmitted, so every cap eviction had to
  // fall back to dropping the LRU head outright.
  EXPECT_GT(st.evicted_forced, 0u);
  EXPECT_EQ(st.evicted_lru, 0u);
  EXPECT_FALSE(reports.empty());

  // The same bound, read back through the published obs gauge (the
  // acceptance check: peak flow state is provably bounded by the cap).
  const auto snap = obs::MetricsRegistry::global().snapshot();
  if (const auto* g = snap.gauge("stream.flows_peak")) {
    EXPECT_LE(g->value, 4.0);
  }
}

TEST(StreamFlowTable, EvictionPrefersSlowStartClosedFlows) {
  const FlowAnalyzer analyzer;
  StreamEngine engine(analyzer, one_shard(2));

  const sim::FlowKey young = key_for(0);  // still in slow start, LRU head
  const sim::FlowKey done = key_for(1);   // will close its slow start
  const sim::FlowKey fresh = key_for(2);  // arrival forces an eviction

  // `young`: one segment, no retransmission — slow start still open.
  engine.push(data(young, 0, 1, 1000));

  // `done`: two segments then a retransmission of the first -> slow start
  // closed by retransmission. All touches after `young`, so the LRU order
  // is young (oldest), done — a naive oldest-first eviction would drop
  // `young`.
  engine.push(data(done, sim::kMillisecond, 1, 1000));
  engine.push(data(done, 2 * sim::kMillisecond, 1001, 1000));
  engine.push(ack(done, 3 * sim::kMillisecond, 1001));
  engine.push(data(done, 4 * sim::kMillisecond, 1, 1000));  // retx

  // Third flow arrives: the table must skip the pre-slow-start-close LRU
  // head and evict `done`, the first slow-start-complete flow in LRU
  // order.
  engine.push(data(fresh, 5 * sim::kMillisecond, 1, 1000));

  const auto reports = engine.finish();
  const StreamStats& st = engine.stats();
  EXPECT_EQ(st.evicted_lru, 1u);
  EXPECT_EQ(st.evicted_forced, 0u);
  ASSERT_EQ(reports.size(), 3u);
  // `young` survived to end-of-capture with all its packets intact.
  for (const auto& r : reports) {
    if (r.data_key == young) EXPECT_EQ(r.data_packets, 1u);
    if (r.data_key == done) EXPECT_EQ(r.data_packets, 3u);
  }
}

TEST(StreamFlowTable, ForcedEvictionOnlyWhenNoEligibleVictim) {
  const FlowAnalyzer analyzer;
  StreamEngine engine(analyzer, one_shard(2));

  // Two flows, both still in slow start, then a third arrives: nothing is
  // eligible, so the oldest is dropped and the drop is tallied as forced.
  engine.push(data(key_for(0), 0, 1, 1000));
  engine.push(data(key_for(1), sim::kMillisecond, 1, 1000));
  engine.push(data(key_for(2), 2 * sim::kMillisecond, 1, 1000));

  engine.finish();
  const StreamStats& st = engine.stats();
  EXPECT_EQ(st.evicted_lru, 0u);
  EXPECT_EQ(st.evicted_forced, 1u);
}

TEST(StreamFlowTable, TupleReusedAfterFinStartsFreshFlow) {
  const FlowAnalyzer analyzer;
  StreamEngine engine(analyzer, one_shard(16));
  const sim::FlowKey k = key_for(0);

  // First incarnation: data, ack, then a full bidirectional FIN handshake.
  engine.push(data(k, 0, 1, 1000));
  engine.push(ack(k, sim::kMillisecond, 1001));
  engine.push(data(k, 2 * sim::kMillisecond, 1001, 0, /*fin=*/true));
  // Reverse direction FINs (seq 1, no payload) and acks past our FIN...
  engine.push(ack(k, 3 * sim::kMillisecond, 1002, /*fin=*/true));
  // ...and we ack theirs: FIN handshake complete, flow finalized now.
  {
    analysis::WireRecord w = data(k, 4 * sim::kMillisecond, 1002, 0);
    w.flags.ack = true;
    w.ack32 = 2;
    engine.push(w);
  }

  // Second incarnation on the very same 4-tuple, later in the capture.
  engine.push(data(k, sim::kSecond, 1, 2000));
  engine.push(ack(k, sim::kSecond + sim::kMillisecond, 2001));

  const auto reports = engine.finish();
  const StreamStats& st = engine.stats();
  EXPECT_EQ(st.evicted_fin, 1u);
  EXPECT_EQ(st.flows_opened, 2u);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].data_key, k);
  EXPECT_EQ(reports[1].data_key, k);
  // Reports are in batch (start-time) order: the first incarnation first,
  // and neither flow absorbed the other's packets. (data_packets counts
  // every data-direction record — segment, FIN, and the final ack of the
  // peer's FIN for the first incarnation, matching flow.data.size() in the
  // batch splitter.)
  EXPECT_EQ(reports[0].data_packets, 3u);
  EXPECT_EQ(reports[1].data_packets, 1u);
  EXPECT_LT(reports[0].duration, sim::kSecond);
}

TEST(StreamFlowTable, IdleFlowsAreEvictedOnCaptureTimeGaps) {
  const FlowAnalyzer analyzer;
  StreamConfig cfg = one_shard(16);
  cfg.idle_timeout = sim::kSecond;
  StreamEngine engine(analyzer, cfg);

  engine.push(data(key_for(0), 0, 1, 1000));
  engine.push(ack(key_for(0), sim::kMillisecond, 1001));
  // Ten capture seconds later another flow shows up in the same shard:
  // flow 0 has been idle past the timeout and must be evicted (but still
  // reported).
  engine.push(data(key_for(1), 10 * sim::kSecond, 1, 1000));

  const auto reports = engine.finish();
  const StreamStats& st = engine.stats();
  EXPECT_EQ(st.evicted_idle, 1u);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].data_key, key_for(0));
  EXPECT_EQ(reports[0].data_packets, 1u);
}

}  // namespace
}  // namespace ccsig::stream

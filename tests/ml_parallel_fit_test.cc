// Parallel training must be a pure scheduling change: the serialized model
// bytes may not depend on --jobs. Bootstrap samples are pre-drawn serially
// from the forest RNG and runtime::parallel_map preserves order, so
// jobs=1 and jobs=4 must produce byte-identical forests and CV folds.
//
// Race coverage: configure with -DCCSIG_ENABLE_TSAN=ON and run this test —
// the whole tree builds with -fsanitize=thread, so the parallel_map worker
// threads and the shared read-only Dataset are checked under TSan.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/cv.h"
#include "ml/dataset.h"
#include "ml/random_forest.h"
#include "sim/random.h"

namespace ccsig::ml {
namespace {

Dataset mixture_dataset(std::size_t rows, std::uint64_t seed) {
  Dataset d({"w", "x", "y", "z"});
  sim::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    const int label = static_cast<int>(i % 3);
    std::vector<double> row(4);
    for (int f = 0; f < 4; ++f) {
      row[static_cast<std::size_t>(f)] =
          std::round(rng.normal(0.4 * label + 0.1 * f, 0.5) * 100.0) / 100.0;
    }
    d.add(std::move(row), label);
  }
  return d;
}

TEST(ParallelFit, ForestBytesIndependentOfJobs) {
  const Dataset data = mixture_dataset(600, 41);
  const RandomForest::Params params{.n_trees = 7,
                                    .tree = {.max_depth = 6}};
  RandomForest serial(params, /*seed=*/123);
  serial.fit(data, /*jobs=*/1);
  RandomForest parallel(params, /*seed=*/123);
  parallel.fit(data, /*jobs=*/4);
  EXPECT_EQ(serial.to_text(), parallel.to_text());
  EXPECT_EQ(serial.tree_count(), 7u);
}

TEST(ParallelFit, ForestDefaultJobsMatchesSerial) {
  const Dataset data = mixture_dataset(400, 42);
  const RandomForest::Params params{.n_trees = 5, .tree = {.max_depth = 5}};
  RandomForest serial(params, 9);
  serial.fit(data, 1);
  RandomForest defaulted(params, 9);
  defaulted.fit(data, /*jobs=*/0);  // 0 => all hardware threads
  EXPECT_EQ(serial.to_text(), defaulted.to_text());
}

TEST(ParallelFit, ForestRoundTripsThroughText) {
  const Dataset data = mixture_dataset(300, 43);
  RandomForest forest(RandomForest::Params{.n_trees = 4,
                                           .tree = {.max_depth = 5}},
                      77);
  forest.fit(data, 4);
  const std::string text = forest.to_text();
  const RandomForest reloaded = RandomForest::from_text(text);
  EXPECT_EQ(reloaded.to_text(), text);
  for (std::size_t i = 0; i < data.size(); i += 17) {
    EXPECT_EQ(reloaded.predict(data.row(i)), forest.predict(data.row(i)));
  }
}

TEST(ParallelFit, CrossValidationIndependentOfJobs) {
  const Dataset data = mixture_dataset(500, 44);
  const DecisionTree::Params params{.max_depth = 6};
  const CrossValidation serial = cross_validate(data, params, 5, 2024, 1);
  const CrossValidation parallel = cross_validate(data, params, 5, 2024, 4);
  ASSERT_EQ(serial.fold_trees.size(), 5u);
  ASSERT_EQ(parallel.fold_trees.size(), 5u);
  for (std::size_t f = 0; f < 5; ++f) {
    EXPECT_EQ(serial.fold_trees[f].to_text(), parallel.fold_trees[f].to_text())
        << "fold " << f;
    EXPECT_EQ(serial.fold_accuracy[f], parallel.fold_accuracy[f]);
  }
  EXPECT_EQ(serial.accuracy, parallel.accuracy);
  EXPECT_GT(serial.accuracy, 0.5);  // sanity: folds actually learned
}

TEST(ParallelFit, CrossValidationPoolsFoldAccuracy) {
  const Dataset data = mixture_dataset(250, 45);
  const CrossValidation cv =
      cross_validate(data, DecisionTree::Params{.max_depth = 4}, 5, 7, 2);
  ASSERT_EQ(cv.fold_accuracy.size(), 5u);
  for (double a : cv.fold_accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  EXPECT_THROW(cross_validate(Dataset{}, {}, 5, 7, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ccsig::ml

#include "tcp/congestion_control.h"

#include <gtest/gtest.h>

#include "tcp/reno.h"

namespace ccsig::tcp {
namespace {

using sim::kMillisecond;
using sim::kSecond;

constexpr std::uint32_t kMss = 1448;

TEST(Factory, ResolvesKnownNames) {
  EXPECT_EQ(congestion_control_by_name("reno")(kMss)->name(), "reno");
  EXPECT_EQ(congestion_control_by_name("newreno")(kMss)->name(), "reno");
  EXPECT_EQ(congestion_control_by_name("cubic")(kMss)->name(), "cubic");
  EXPECT_EQ(congestion_control_by_name("bbr")(kMss)->name(), "bbr");
  EXPECT_EQ(congestion_control_by_name("bbr_lite")(kMss)->name(), "bbr");
  EXPECT_EQ(congestion_control_by_name("vegas")(kMss)->name(), "vegas");
  EXPECT_EQ(congestion_control_by_name("westwood")(kMss)->name(), "westwood");
  EXPECT_EQ(congestion_control_by_name("westwood+")(kMss)->name(),
            "westwood");
  EXPECT_EQ(congestion_control_by_name("cubic_hystart")(kMss)->name(),
            "cubic_hystart");
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(congestion_control_by_name("ledbat"), std::invalid_argument);
}

TEST(Factory, RegistryNamesAllResolveToThemselves) {
  // Every registry entry's canonical name must round-trip through the
  // by-name lookup to the same factory; tests and tools rely on this to
  // enumerate variants without a hand-maintained list.
  for (const CongestionControlInfo& info : congestion_control_registry()) {
    EXPECT_EQ(congestion_control_by_name(info.name), info.factory)
        << info.name;
    EXPECT_NE(info.factory(kMss), nullptr) << info.name;
  }
  EXPECT_EQ(congestion_control_registry().size(), 6u);
}

TEST(Reno, InitialWindowIsTenSegments) {
  auto cc = make_reno(kMss);
  EXPECT_EQ(cc->cwnd_bytes(), 10ull * kMss);
  EXPECT_TRUE(cc->in_slow_start());
}

TEST(Reno, SlowStartDoublesPerRtt) {
  auto cc = make_reno(kMss);
  const std::uint64_t before = cc->cwnd_bytes();
  // ACK a full window's worth, one MSS at a time (one RTT of ACKs).
  for (std::uint64_t acked = 0; acked < before; acked += kMss) {
    cc->on_ack(kMss, 10 * kMillisecond, 0);
  }
  EXPECT_EQ(cc->cwnd_bytes(), 2 * before);
}

TEST(Reno, FastRetransmitHalvesToSsthresh) {
  auto cc = make_reno(kMss);
  const std::uint64_t flight = 100ull * kMss;
  cc->on_loss(LossKind::kFastRetransmit, flight, 0);
  EXPECT_EQ(cc->ssthresh_bytes(), flight / 2);
  EXPECT_EQ(cc->cwnd_bytes(), flight / 2);
  EXPECT_FALSE(cc->in_slow_start());
}

TEST(Reno, TimeoutCollapsesToOneSegment) {
  auto cc = make_reno(kMss);
  cc->on_loss(LossKind::kTimeout, 100ull * kMss, 0);
  EXPECT_EQ(cc->cwnd_bytes(), kMss);
  EXPECT_TRUE(cc->in_slow_start());
  EXPECT_EQ(cc->ssthresh_bytes(), 50ull * kMss);
}

TEST(Reno, SsthreshFloorIsTwoSegments) {
  auto cc = make_reno(kMss);
  cc->on_loss(LossKind::kFastRetransmit, kMss, 0);
  EXPECT_EQ(cc->ssthresh_bytes(), 2ull * kMss);
}

TEST(Reno, CongestionAvoidanceLinearGrowth) {
  auto cc = make_reno(kMss);
  cc->on_loss(LossKind::kFastRetransmit, 20ull * kMss, 0);  // -> CA at 10 MSS
  const std::uint64_t cwnd0 = cc->cwnd_bytes();
  // One full window of ACKs -> exactly one MSS of growth.
  for (std::uint64_t acked = 0; acked < cwnd0; acked += kMss) {
    cc->on_ack(kMss, 10 * kMillisecond, 0);
  }
  EXPECT_EQ(cc->cwnd_bytes(), cwnd0 + kMss);
}

TEST(Reno, NoPacing) {
  auto cc = make_reno(kMss);
  EXPECT_EQ(cc->pacing_rate_bps(), 0.0);
}

TEST(Cubic, SlowStartMatchesReno) {
  auto cc = make_cubic(kMss);
  EXPECT_TRUE(cc->in_slow_start());
  const std::uint64_t before = cc->cwnd_bytes();
  for (std::uint64_t acked = 0; acked < before; acked += kMss) {
    cc->on_ack(kMss, 10 * kMillisecond, 0);
  }
  EXPECT_EQ(cc->cwnd_bytes(), 2 * before);
}

TEST(Cubic, LossAppliesBeta) {
  auto cc = make_cubic(kMss);
  // Grow a bit first.
  for (int i = 0; i < 100; ++i) cc->on_ack(kMss, 10 * kMillisecond, 0);
  const std::uint64_t before = cc->cwnd_bytes();
  cc->on_loss(LossKind::kFastRetransmit, before, 0);
  EXPECT_NEAR(static_cast<double>(cc->cwnd_bytes()),
              0.7 * static_cast<double>(before),
              static_cast<double>(kMss));
  EXPECT_FALSE(cc->in_slow_start());
}

TEST(Cubic, GrowsAfterLoss) {
  auto cc = make_cubic(kMss);
  for (int i = 0; i < 100; ++i) cc->on_ack(kMss, 10 * kMillisecond, 0);
  cc->on_loss(LossKind::kFastRetransmit, cc->cwnd_bytes(), 1 * kSecond);
  const std::uint64_t after_loss = cc->cwnd_bytes();
  // Feed ACKs over simulated time; the cubic function must grow the window.
  sim::Time now = 1 * kSecond;
  for (int i = 0; i < 2000; ++i) {
    now += 2 * kMillisecond;
    cc->on_ack(kMss, 10 * kMillisecond, now);
  }
  EXPECT_GT(cc->cwnd_bytes(), after_loss);
}

TEST(Cubic, TimeoutCollapses) {
  auto cc = make_cubic(kMss);
  for (int i = 0; i < 50; ++i) cc->on_ack(kMss, 10 * kMillisecond, 0);
  cc->on_loss(LossKind::kTimeout, cc->cwnd_bytes(), 0);
  EXPECT_EQ(cc->cwnd_bytes(), kMss);
}

TEST(BbrLite, StartsInStartupWithHighGain) {
  auto cc = make_bbr_lite(kMss);
  EXPECT_TRUE(cc->in_slow_start());
  EXPECT_EQ(cc->pacing_rate_bps(), 0.0);  // no estimate yet
}

TEST(BbrLite, EstimatesBandwidthAndPaces) {
  auto cc = make_bbr_lite(kMss);
  // Simulate steady delivery: 10 MSS per 10 ms -> ~11.6 Mbps.
  sim::Time now = 0;
  for (int i = 0; i < 50; ++i) {
    now += 10 * kMillisecond;
    cc->on_ack(10ull * kMss, 10 * kMillisecond, now);
  }
  EXPECT_GT(cc->pacing_rate_bps(), 0.0);
  EXPECT_GT(cc->cwnd_bytes(), 4ull * kMss);
}

TEST(BbrLite, ExitsStartupWhenBandwidthPlateaus) {
  auto cc = make_bbr_lite(kMss);
  sim::Time now = 0;
  for (int i = 0; i < 100 && cc->in_slow_start(); ++i) {
    now += 10 * kMillisecond;
    cc->on_ack(10ull * kMss, 10 * kMillisecond, now);
  }
  EXPECT_FALSE(cc->in_slow_start());
}

TEST(BbrLite, TimeoutResetsModel) {
  auto cc = make_bbr_lite(kMss);
  sim::Time now = 0;
  for (int i = 0; i < 100; ++i) {
    now += 10 * kMillisecond;
    cc->on_ack(10ull * kMss, 10 * kMillisecond, now);
  }
  cc->on_loss(LossKind::kTimeout, 10ull * kMss, now);
  EXPECT_TRUE(cc->in_slow_start());
  EXPECT_EQ(cc->pacing_rate_bps(), 0.0);
}

TEST(BbrLite, IgnoresIsolatedFastRetransmit) {
  auto cc = make_bbr_lite(kMss);
  sim::Time now = 0;
  for (int i = 0; i < 100; ++i) {
    now += 10 * kMillisecond;
    cc->on_ack(10ull * kMss, 10 * kMillisecond, now);
  }
  const double rate = cc->pacing_rate_bps();
  cc->on_loss(LossKind::kFastRetransmit, 10ull * kMss, now);
  EXPECT_GT(cc->pacing_rate_bps(), 0.5 * rate);
}

}  // namespace
}  // namespace ccsig::tcp

#include "features/extractor.h"

#include <gtest/gtest.h>

namespace ccsig::features {
namespace {

using sim::kMillisecond;

analysis::FlowTrace synthetic_flow(int n_segments, sim::Duration base_rtt,
                                   sim::Duration rtt_step,
                                   bool end_with_retx = true) {
  analysis::FlowTrace flow;
  flow.data_key = sim::FlowKey{1, 2, 10, 20};
  sim::Time t = 0;
  for (int i = 0; i < n_segments; ++i) {
    analysis::TraceRecord d;
    d.time = t;
    d.key = flow.data_key;
    d.seq = 1 + 100ull * static_cast<unsigned>(i);
    d.payload_bytes = 100;
    flow.data.push_back(d);

    analysis::TraceRecord a;
    a.time = t + base_rtt + i * rtt_step;
    a.key = flow.data_key.reversed();
    a.ack = d.seq + 100;
    a.flags.ack = true;
    flow.acks.push_back(a);
    t += 2 * kMillisecond;
  }
  if (end_with_retx) {
    analysis::TraceRecord retx;
    retx.time = t + 500 * kMillisecond;
    retx.key = flow.data_key;
    retx.seq = 1;
    retx.payload_bytes = 100;
    flow.data.push_back(retx);
  }
  return flow;
}

TEST(Extractor, ProducesFeaturesForValidFlow) {
  const auto flow = synthetic_flow(30, 20 * kMillisecond, 2 * kMillisecond);
  const auto f = extract_features(flow);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->rtt_samples, 30u);
  EXPECT_GT(f->norm_diff, 0.5);  // RTT tripled over the window
  EXPECT_GT(f->cov, 0.1);
  EXPECT_TRUE(f->slow_start_ended_by_retransmission);
  EXPECT_NEAR(f->min_rtt_ms, 20.0, 0.01);
}

TEST(Extractor, RejectsTooFewSamples) {
  const auto flow = synthetic_flow(9, 20 * kMillisecond, 1 * kMillisecond);
  EXPECT_FALSE(extract_features(flow).has_value());
  // Exactly at the limit passes.
  const auto flow10 = synthetic_flow(10, 20 * kMillisecond, 1 * kMillisecond);
  EXPECT_TRUE(extract_features(flow10).has_value());
}

TEST(Extractor, MinSamplesConfigurable) {
  const auto flow = synthetic_flow(5, 20 * kMillisecond, 1 * kMillisecond);
  ExtractOptions opt;
  opt.min_rtt_samples = 3;
  EXPECT_TRUE(extract_features(flow, opt).has_value());
}

TEST(Extractor, RequireRetransmissionOption) {
  const auto flow =
      synthetic_flow(20, 20 * kMillisecond, 1 * kMillisecond, false);
  ExtractOptions strict;
  strict.require_retransmission = true;
  EXPECT_FALSE(extract_features(flow, strict).has_value());
  EXPECT_TRUE(extract_features(flow).has_value());  // default accepts
}

TEST(Extractor, EmptyFlowRejected) {
  analysis::FlowTrace flow;
  EXPECT_FALSE(extract_features(flow).has_value());
}

TEST(Extractor, FlatRttGivesNearZeroMetrics) {
  const auto flow = synthetic_flow(30, 70 * kMillisecond, 0);
  const auto f = extract_features(flow);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(f->norm_diff, 0.0, 1e-9);
  EXPECT_NEAR(f->cov, 0.0, 1e-9);
}

TEST(Extractor, SelfLikeVsExternalLikeSignaturesSeparate) {
  // Self-induced: low baseline, strong growth. External: high baseline,
  // little growth. The extracted metrics must order accordingly.
  const auto self_flow =
      synthetic_flow(40, 20 * kMillisecond, 3 * kMillisecond);
  const auto ext_flow =
      synthetic_flow(40, 70 * kMillisecond, 200 * sim::kMicrosecond);
  const auto fs = extract_features(self_flow);
  const auto fe = extract_features(ext_flow);
  ASSERT_TRUE(fs && fe);
  EXPECT_GT(fs->norm_diff, 2 * fe->norm_diff);
  EXPECT_GT(fs->cov, 2 * fe->cov);
}

}  // namespace
}  // namespace ccsig::features

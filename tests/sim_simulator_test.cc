#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccsig::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_at(100, [&] { seen = sim.now(); });
  sim.run_until(1000);
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 1000);  // clock lands on the deadline when idle
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents) {
  Simulator sim;
  bool late_fired = false;
  sim.schedule_at(2000, [&] { late_fired = true; });
  sim.run_until(1000);
  EXPECT_FALSE(late_fired);
  sim.run_until(3000);
  EXPECT_TRUE(late_fired);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<Time> fire_times;
  sim.schedule_at(500, [&] {
    sim.schedule_in(250, [&] { fire_times.push_back(sim.now()); });
  });
  sim.run_until(10000);
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], 750);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_at(50, [&] { seen = sim.now(); });  // in the past
  });
  sim.run_until(1000);
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, NegativeDelayClamps) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_at(10, [&] {
    sim.schedule_in(-5, [&] { seen = sim.now(); });
  });
  sim.run_until(100);
  EXPECT_EQ(seen, 10);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_in(1, chain);
  };
  sim.schedule_at(0, chain);
  const auto executed = sim.run_until(1000);
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(executed, 100u);
}

TEST(Simulator, RunDrainsEverything) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i * 10, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace ccsig::sim

#include "testbed/traffic.h"

#include <gtest/gtest.h>

#include <set>

#include "test_helpers.h"

namespace ccsig::testbed {
namespace {

TEST(PortAllocator, HandsOutUniquePorts) {
  PortAllocator ports(1000);
  std::set<sim::Port> seen;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(seen.insert(ports.next()).second);
  }
}

TEST(FetchLoop, CompletesAndRestarts) {
  testutil::TwoNodePath path(testutil::basic_link(50e6, 2, 100));
  PortAllocator ports;
  FetchLoop::Config cfg;
  cfg.server = path.server;
  cfg.client = path.client;
  cfg.size_sampler = [] { return 100'000ull; };
  cfg.think_sampler = [] { return 0.01; };
  FetchLoop loop(path.net.sim(), ports, std::move(cfg));
  loop.start(0);
  path.net.sim().run_until(sim::from_seconds(5));
  EXPECT_GT(loop.fetches_completed(), 5u);
  EXPECT_EQ(loop.bytes_fetched(), loop.fetches_completed() * 100'000ull);
}

TEST(FetchLoop, StartTimeHonored) {
  testutil::TwoNodePath path(testutil::basic_link(50e6, 2, 100));
  PortAllocator ports;
  FetchLoop::Config cfg;
  cfg.server = path.server;
  cfg.client = path.client;
  cfg.size_sampler = [] { return 10'000ull; };
  FetchLoop loop(path.net.sim(), ports, std::move(cfg));
  loop.start(sim::from_seconds(2));
  path.net.sim().run_until(sim::from_seconds(1));
  EXPECT_EQ(loop.fetches_completed(), 0u);
  path.net.sim().run_until(sim::from_seconds(4));
  EXPECT_GT(loop.fetches_completed(), 0u);
}

TEST(TgTrans, GeneratesTraffic) {
  testutil::TwoNodePath path(testutil::basic_link(100e6, 5, 100));
  PortAllocator ports;
  TgTrans::Config cfg;
  cfg.servers = {path.server};
  cfg.client = path.client;
  cfg.workers = 3;
  cfg.scale = 0.01;  // small objects for a fast test
  TgTrans tg(path.net.sim(), ports, sim::Rng(5), cfg);
  tg.start(0);
  path.net.sim().run_until(sim::from_seconds(5));
  EXPECT_GT(tg.fetches_completed(), 10u);
}

TEST(TgCong, SaturatesBottleneck) {
  testutil::TwoNodePath path(testutil::basic_link(10e6, 1, 50));
  PortAllocator ports;
  TgCong::Config cfg;
  cfg.server = path.server;
  cfg.client = path.client;
  cfg.flows = 10;
  cfg.scale = 0.02;  // 2 MB objects
  cfg.start_stagger = sim::from_seconds(0.5);
  TgCong tg(path.net.sim(), ports, sim::Rng(6), cfg);
  tg.start(0);
  path.net.sim().run_until(sim::from_seconds(10));
  // The 10 Mbps link should be essentially full after the ramp.
  const auto stats = path.down->stats();
  const double delivered_bps = static_cast<double>(stats.delivered_bytes) * 8.0 / 10.0;
  EXPECT_GT(delivered_bps, 8e6);
  EXPECT_GT(stats.max_queue_bytes, 0u);
}

TEST(TgCong, StaggersStarts) {
  testutil::TwoNodePath path(testutil::basic_link(100e6, 1, 50));
  PortAllocator ports;
  TgCong::Config cfg;
  cfg.server = path.server;
  cfg.client = path.client;
  cfg.flows = 20;
  cfg.scale = 1e-5;  // ~1 MB floor objects
  cfg.start_stagger = sim::from_seconds(1.0);
  TgCong tg(path.net.sim(), ports, sim::Rng(7), cfg);
  tg.start(0);
  // After 0.1 s only a fraction of flows should have started: the tap on
  // the server counts SYNs.
  path.net.sim().run_until(100 * sim::kMillisecond);
  int syns = 0;
  for (const auto& r : path.recorder.trace()) {
    if (r.flags.syn && !r.flags.ack) ++syns;
  }
  EXPECT_GT(syns, 0);
  EXPECT_LT(syns, 20);
}

}  // namespace
}  // namespace ccsig::testbed

// Property test: the presort-based DecisionTree must be byte-identical to
// the original per-node-sort CART implementation. `ReferenceTree` below is
// a faithful transcription of the seed algorithm (sort the node's rows by
// each feature at every node, scan boundaries, recurse); both trees
// serialize through the same text format, so `to_text()` equality checks
// every node index, class, threshold and probability bit-for-bit.
//
// The randomized datasets quantize features to two decimals, which makes
// duplicate feature values — and therefore tie boundaries and equal-Gini
// splits — common rather than exceptional. This file is also registered
// with the ASan+UBSan fault-test tree (tests/run_sanitized_fault_tests.cmake)
// so the partition bookkeeping is exercised under sanitizers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "sim/random.h"

namespace ccsig::ml {
namespace {

/// The seed implementation, verbatim semantics: per-node re-sorts, vector
/// node storage, identical arithmetic and tie-breaking.
class ReferenceTree {
 public:
  explicit ReferenceTree(DecisionTree::Params params) : params_(params) {}

  void fit(const Dataset& data) {
    nodes_.clear();
    n_classes_ = data.num_classes();
    std::vector<std::size_t> indices(data.size());
    std::iota(indices.begin(), indices.end(), 0);
    build(data, indices, 0);
  }

  std::string to_text() const {
    std::ostringstream os;
    os.precision(17);
    os << "ccsig-dtree v1\n";
    os << "classes " << n_classes_ << "\n";
    os << "max_depth " << params_.max_depth << "\n";
    os << "nodes " << nodes_.size() << "\n";
    for (const Node& n : nodes_) {
      if (n.leaf) {
        os << "leaf " << n.klass;
      } else {
        os << "split " << n.feature << " " << n.threshold << " " << n.left
           << " " << n.right << " " << n.klass;
      }
      for (double p : n.probs) os << " " << p;
      os << "\n";
    }
    return os.str();
  }

 private:
  struct Node {
    bool leaf = true;
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int klass = 0;
    std::vector<double> probs;
  };

  static double gini(const std::vector<std::size_t>& counts,
                     std::size_t total) {
    if (total == 0) return 0.0;
    double g = 1.0;
    for (std::size_t c : counts) {
      const double p = static_cast<double>(c) / static_cast<double>(total);
      g -= p * p;
    }
    return g;
  }

  int build(const Dataset& data, std::vector<std::size_t>& indices,
            int depth) {
    std::vector<std::size_t> counts(static_cast<std::size_t>(n_classes_), 0);
    for (std::size_t i : indices) {
      ++counts[static_cast<std::size_t>(data.label(i))];
    }
    const std::size_t total = indices.size();
    const double node_gini = gini(counts, total);

    Node node;
    node.probs.resize(counts.size());
    for (std::size_t c = 0; c < counts.size(); ++c) {
      node.probs[c] =
          static_cast<double>(counts[c]) / static_cast<double>(total);
    }
    node.klass = static_cast<int>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());

    const int my_index = static_cast<int>(nodes_.size());
    nodes_.push_back(node);

    const bool pure = node_gini == 0.0;
    if (pure || depth >= params_.max_depth ||
        total < params_.min_samples_split) {
      return my_index;
    }

    const std::size_t n_features = data.num_features();
    int best_feature = -1;
    double best_threshold = 0.0;
    double best_impurity = node_gini;

    std::vector<std::size_t> order(indices);
    for (std::size_t f = 0; f < n_features; ++f) {
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return data.row(a)[f] < data.row(b)[f];
                });
      std::vector<std::size_t> left_counts(counts.size(), 0);
      std::vector<std::size_t> right_counts = counts;
      for (std::size_t k = 0; k + 1 < order.size(); ++k) {
        const int label = data.label(order[k]);
        ++left_counts[static_cast<std::size_t>(label)];
        --right_counts[static_cast<std::size_t>(label)];
        const double v = data.row(order[k])[f];
        const double v_next = data.row(order[k + 1])[f];
        if (v == v_next) continue;
        const std::size_t n_left = k + 1;
        const std::size_t n_right = total - n_left;
        if (n_left < params_.min_samples_leaf ||
            n_right < params_.min_samples_leaf) {
          continue;
        }
        const double weighted =
            (static_cast<double>(n_left) * gini(left_counts, n_left) +
             static_cast<double>(n_right) * gini(right_counts, n_right)) /
            static_cast<double>(total);
        if (weighted + 1e-12 < best_impurity) {
          best_impurity = weighted;
          best_feature = static_cast<int>(f);
          best_threshold = (v + v_next) / 2.0;
        }
      }
    }

    if (best_feature < 0 ||
        node_gini - best_impurity < params_.min_impurity_decrease) {
      return my_index;
    }

    std::vector<std::size_t> left, right;
    left.reserve(total);
    right.reserve(total);
    for (std::size_t i : indices) {
      (data.row(i)[static_cast<std::size_t>(best_feature)] <= best_threshold
           ? left
           : right)
          .push_back(i);
    }
    indices.clear();
    indices.shrink_to_fit();

    const int left_child = build(data, left, depth + 1);
    const int right_child = build(data, right, depth + 1);
    nodes_[static_cast<std::size_t>(my_index)].leaf = false;
    nodes_[static_cast<std::size_t>(my_index)].feature = best_feature;
    nodes_[static_cast<std::size_t>(my_index)].threshold = best_threshold;
    nodes_[static_cast<std::size_t>(my_index)].left = left_child;
    nodes_[static_cast<std::size_t>(my_index)].right = right_child;
    return my_index;
  }

  DecisionTree::Params params_;
  std::vector<Node> nodes_;
  int n_classes_ = 0;
};

/// Gaussian-mixture rows quantized to `decimals` places so equal feature
/// values (and thus tie boundaries) occur frequently.
Dataset quantized_dataset(std::size_t rows, int features, int classes,
                          int decimals, std::uint64_t seed) {
  Dataset d;
  sim::Rng rng(seed);
  const double scale = std::pow(10.0, decimals);
  for (std::size_t i = 0; i < rows; ++i) {
    const int label = static_cast<int>(i % static_cast<std::size_t>(classes));
    std::vector<double> row(static_cast<std::size_t>(features));
    for (int f = 0; f < features; ++f) {
      const double center = 0.4 * label + 0.1 * f;
      row[static_cast<std::size_t>(f)] =
          std::round(rng.normal(center, 0.5) * scale) / scale;
    }
    d.add(std::move(row), label);
  }
  return d;
}

TEST(PresortEquivalence, RandomizedDatasetsSerializeIdentically) {
  struct Case {
    std::size_t rows;
    int features;
    int classes;
    int decimals;  // 0 decimals => massive duplicate runs
    DecisionTree::Params params;
  };
  const Case cases[] = {
      {1, 1, 1, 2, {.max_depth = 4}},
      {2, 1, 2, 2, {.max_depth = 4}},
      {40, 2, 2, 1, {.max_depth = 3}},
      {200, 3, 2, 0, {.max_depth = 6}},
      {350, 4, 3, 1, {.max_depth = 8}},
      {500, 2, 3, 2, {.max_depth = 5, .min_samples_split = 8}},
      {500, 5, 4, 1, {.max_depth = 7, .min_samples_leaf = 5}},
      {800, 3, 2, 0, {.max_depth = 10, .min_impurity_decrease = 0.01}},
      {1000, 4, 3, 1, {.max_depth = 12}},
  };
  for (const Case& c : cases) {
    for (std::uint64_t seed : {11u, 12u, 13u}) {
      const Dataset data =
          quantized_dataset(c.rows, c.features, c.classes, c.decimals, seed);
      DecisionTree fast(c.params);
      fast.fit(data);
      ReferenceTree slow(c.params);
      slow.fit(data);
      EXPECT_EQ(fast.to_text(), slow.to_text())
          << "rows=" << c.rows << " features=" << c.features
          << " classes=" << c.classes << " decimals=" << c.decimals
          << " seed=" << seed;
    }
  }
}

TEST(PresortEquivalence, EqualGiniTieBreaksTowardLowerFeature) {
  // Feature 1 mirrors feature 0, so every candidate split has an exact twin
  // on the other feature with identical impurity. The strict `<` comparison
  // means the first feature scanned (index 0) must win.
  Dataset d({"a", "b"});
  for (int i = 0; i < 20; ++i) {
    const double v = static_cast<double>(i);
    d.add({v, v}, i < 10 ? 0 : 1);
  }
  DecisionTree tree(DecisionTree::Params{.max_depth = 3});
  tree.fit(d);
  const std::string text = tree.to_text();
  EXPECT_NE(text.find("split 0 "), std::string::npos) << text;
  EXPECT_EQ(text.find("split 1 "), std::string::npos) << text;

  ReferenceTree ref(DecisionTree::Params{.max_depth = 3});
  ref.fit(d);
  EXPECT_EQ(text, ref.to_text());
}

TEST(PresortEquivalence, DuplicateValuesNeverFormBoundaries) {
  // All rows share one feature value except a single outlier: the only
  // legal threshold is the midpoint between the duplicate run and the
  // outlier, regardless of how rows are ordered within the run.
  Dataset d({"x"});
  for (int i = 0; i < 9; ++i) d.add({1.0}, i % 2);
  d.add({5.0}, 1);
  DecisionTree tree(DecisionTree::Params{.max_depth = 4});
  tree.fit(d);
  EXPECT_NE(tree.to_text().find("split 0 3"), std::string::npos)
      << tree.to_text();  // threshold (1.0 + 5.0) / 2 = 3

  ReferenceTree ref(DecisionTree::Params{.max_depth = 4});
  ref.fit(d);
  EXPECT_EQ(tree.to_text(), ref.to_text());
}

TEST(PresortEquivalence, ConstantFeatureProducesSingleLeaf) {
  // No boundary exists anywhere: the root must stay a leaf in both
  // implementations (the presort path must not invent a split from the
  // tie-run bookkeeping).
  Dataset d({"x"});
  for (int i = 0; i < 12; ++i) d.add({7.5}, i % 3);
  DecisionTree tree(DecisionTree::Params{.max_depth = 6});
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);

  ReferenceTree ref(DecisionTree::Params{.max_depth = 6});
  ref.fit(d);
  EXPECT_EQ(tree.to_text(), ref.to_text());
}

TEST(PresortEquivalence, SubsetFitMatchesMaterializedSubset) {
  // RandomForest fits on (data, sample_indices) without copying rows; the
  // result must match fitting on the materialized subset, duplicates and
  // all — with n_classes taken from the sampled rows.
  const Dataset data = quantized_dataset(300, 3, 3, 1, 99);
  sim::Rng rng(7);
  std::vector<std::size_t> sample;
  for (int i = 0; i < 200; ++i) {
    sample.push_back(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1)));
  }
  DecisionTree via_rows(DecisionTree::Params{.max_depth = 6});
  via_rows.fit(data, sample);
  DecisionTree via_copy(DecisionTree::Params{.max_depth = 6});
  via_copy.fit(data.subset(sample));
  EXPECT_EQ(via_rows.to_text(), via_copy.to_text());
}

}  // namespace
}  // namespace ccsig::ml

// PcapCursor tail mode: a capture still being written is an incomplete
// tail the cursor resumes from, not a ParseException — the contract
// ccsigd's growing-file sources are built on. The non-tail error paths
// must stay byte-identical to the legacy cursor (ingest_corpus_test pins
// the differential; here we pin the messages directly).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pcap/cursor.h"
#include "runtime/parse_error.h"
#include "stream/ingest.h"
#include "test_helpers.h"

namespace ccsig::pcap {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::uint8_t* data,
                 std::size_t n, bool append) {
  std::ofstream out(path, std::ios::binary |
                              (append ? std::ios::app : std::ios::trunc));
  out.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(n));
}

class PcapTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto dir = fs::temp_directory_path();
    const std::string stamp =
        std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
        "_" + std::to_string(counter_++);
    full_ = (dir / ("ccsig_tail_full_" + stamp + ".pcap")).string();
    grow_ = (dir / ("ccsig_tail_grow_" + stamp + ".pcap")).string();
    testutil::write_random_capture(7, full_);
    bytes_ = read_bytes(full_);
    ASSERT_GT(bytes_.size(), 64u);
  }
  void TearDown() override {
    fs::remove(full_);
    fs::remove(grow_);
  }

  std::size_t count_records(const std::string& path) {
    PcapCursor c(path);
    std::size_t n = 0;
    while (c.next()) ++n;
    return n;
  }

  static int counter_;
  std::string full_;
  std::string grow_;
  std::vector<std::uint8_t> bytes_;
};

int PcapTailTest::counter_ = 0;

TEST_F(PcapTailTest, ResumesAcrossFileGrowth) {
  const std::size_t total = count_records(full_);
  ASSERT_GT(total, 0u);

  // Start with a fragment that ends inside a record, then grow the file in
  // uneven chunks between reads. Every record must come out exactly once.
  std::size_t written = 64;
  write_bytes(grow_, bytes_.data(), written, /*append=*/false);

  PcapCursor cursor(grow_, CursorMode::kStream, /*tail=*/true);
  EXPECT_EQ(cursor.mode(), CursorMode::kStream);
  std::size_t seen = 0;
  const std::size_t chunks[] = {1, 17, 101, 1000, 4096, 50000};
  std::size_t chunk_i = 0;
  while (seen < total) {
    if (const auto rec = cursor.next()) {
      ++seen;
      continue;
    }
    // Caught up with the "writer": nothing may be consumed, the stream
    // must resume after the file grows.
    if (written >= bytes_.size()) {
      FAIL() << "cursor stopped at " << seen << "/" << total
             << " records with the whole capture on disk";
    }
    const std::size_t n =
        std::min(chunks[chunk_i++ % 6], bytes_.size() - written);
    write_bytes(grow_, bytes_.data() + written, n, /*append=*/true);
    written += n;
  }
  EXPECT_EQ(seen, total);
  // Fully written and fully read: further polls report a caught-up tail,
  // not an incomplete one.
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_FALSE(cursor.incomplete_tail());
}

TEST_F(PcapTailTest, FileHeaderStillBeingWritten) {
  // 10 bytes of the 24-byte header: not yet a parseable capture.
  write_bytes(grow_, bytes_.data(), 10, /*append=*/false);
  PcapCursor cursor(grow_, CursorMode::kStream, /*tail=*/true);
  EXPECT_FALSE(cursor.header_ready());
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_TRUE(cursor.incomplete_tail());

  write_bytes(grow_, bytes_.data() + 10, bytes_.size() - 10, /*append=*/true);
  EXPECT_TRUE(cursor.next().has_value());
  EXPECT_TRUE(cursor.header_ready());
}

TEST_F(PcapTailTest, PartialRecordIsIncompleteTailNotError) {
  // Header + one truncated record header (8 of 16 bytes).
  write_bytes(grow_, bytes_.data(), 24 + 8, /*append=*/false);
  PcapCursor cursor(grow_, CursorMode::kStream, /*tail=*/true);
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_TRUE(cursor.incomplete_tail());
  // Nothing was consumed: completing the record delivers it.
  write_bytes(grow_, bytes_.data() + 24 + 8, bytes_.size() - 24 - 8,
              /*append=*/true);
  EXPECT_TRUE(cursor.next().has_value());
  EXPECT_FALSE(cursor.incomplete_tail());
}

TEST_F(PcapTailTest, BadMagicThrowsEvenInTailMode) {
  std::vector<std::uint8_t> bad = bytes_;
  bad[0] ^= 0xFF;
  write_bytes(grow_, bad.data(), bad.size(), /*append=*/false);
  EXPECT_THROW(PcapCursor(grow_, CursorMode::kStream, /*tail=*/true),
               runtime::ParseException);
}

TEST_F(PcapTailTest, AbsurdRecordLengthThrowsEvenInTailMode) {
  std::vector<std::uint8_t> bad(bytes_.begin(), bytes_.begin() + 24);
  // Record header with incl_len far past any snaplen.
  const std::uint8_t rec[16] = {0, 0, 0, 0, 0, 0, 0, 0,
                                0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0};
  bad.insert(bad.end(), rec, rec + 16);
  write_bytes(grow_, bad.data(), bad.size(), /*append=*/false);
  PcapCursor cursor(grow_, CursorMode::kStream, /*tail=*/true);
  EXPECT_THROW(cursor.next(), runtime::ParseException);
}

TEST_F(PcapTailTest, NonTailErrorsAreUnchanged) {
  // Truncated record body: the legacy cursor message and offset must
  // survive the tail-mode restructuring byte for byte.
  write_bytes(grow_, bytes_.data(), bytes_.size() - 3, /*append=*/false);
  PcapCursor cursor(grow_);
  try {
    while (cursor.next()) {
    }
    FAIL() << "expected ParseException";
  } catch (const runtime::ParseException& e) {
    EXPECT_NE(std::string(e.what()).find("truncated record body"),
              std::string::npos)
        << e.what();
  }

  // Truncated record header.
  write_bytes(grow_, bytes_.data(), 24 + 7, /*append=*/false);
  PcapCursor cursor2(grow_);
  try {
    while (cursor2.next()) {
    }
    FAIL() << "expected ParseException";
  } catch (const runtime::ParseException& e) {
    EXPECT_NE(std::string(e.what()).find("truncated record header"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(PcapTailTest, BatchedIngestTailReportsCaughtUpNotExhausted) {
  write_bytes(grow_, bytes_.data(), 200, /*append=*/false);
  stream::BatchedIngest ingest(grow_, CursorMode::kStream, /*tail=*/true);
  std::vector<stream::RoutedRecord> out;

  std::size_t got = 0;
  for (;;) {
    const std::size_t n = ingest.fill(out, 1024);
    got += n;
    if (n == 0) break;
  }
  EXPECT_FALSE(ingest.exhausted());  // caught up, not done
  ASSERT_FALSE(ingest.error().has_value());

  write_bytes(grow_, bytes_.data() + 200, bytes_.size() - 200,
              /*append=*/true);
  for (;;) {
    const std::size_t n = ingest.fill(out, 1024);
    got += n;
    if (n == 0) break;
  }
  EXPECT_FALSE(ingest.exhausted());  // a tail never "ends"
  EXPECT_EQ(out.size(), got);

  // The tail delivered exactly the records a plain one-shot read sees.
  stream::BatchedIngest oneshot(full_, CursorMode::kStream);
  std::vector<stream::RoutedRecord> all;
  while (oneshot.fill(all, 4096) > 0) {
  }
  EXPECT_TRUE(oneshot.exhausted());
  ASSERT_EQ(out.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(out[i].hash, all[i].hash) << "record " << i;
    EXPECT_EQ(out[i].w.time, all[i].w.time) << "record " << i;
  }
}

}  // namespace
}  // namespace ccsig::pcap

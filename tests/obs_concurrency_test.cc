// Concurrency test for the sharded metrics registry: many threads hammer
// the same counter/histogram handles while a reader snapshots mid-flight.
// Counts are exact (relaxed atomics merged by summation), so the final
// snapshot must equal the arithmetic total — and under CCSIG_ENABLE_TSAN
// the whole interaction is race-checked.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ccsig::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kPerThread = 20000;

TEST(MetricsConcurrency, CountersMergeExactlyAcrossThreads) {
  MetricsRegistry reg;
  Counter c = reg.counter("hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c]() mutable {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("hits")->value,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Each recording thread attached (at least) one shard.
  EXPECT_GE(reg.shard_count(), static_cast<std::size_t>(kThreads));
}

TEST(MetricsConcurrency, HistogramCountsExactUnderContention) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("values", {10.0, 100.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t]() mutable {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(t % 2 == 0 ? 5.0 : 50.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = reg.snapshot();
  const auto* s = snap.histogram("values");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s->buckets[0],
            static_cast<std::uint64_t>(kThreads / 2) * kPerThread);
  EXPECT_EQ(s->buckets[1],
            static_cast<std::uint64_t>(kThreads / 2) * kPerThread);
  // Sum merges via the CAS bit-cast-double path; exact because every
  // addend is a small integer-valued double.
  EXPECT_DOUBLE_EQ(s->sum, (kThreads / 2) * kPerThread * (5.0 + 50.0));
}

TEST(MetricsConcurrency, SnapshotsWhileWritersRun) {
  MetricsRegistry reg;
  Counter c = reg.counter("live");
  Gauge g = reg.gauge("depth");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([c, g, &stop]() mutable {
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc();
        g.set(1.0);
      }
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const auto snap = reg.snapshot();
    const std::uint64_t now = snap.counter("live")->value;
    EXPECT_GE(now, last);  // counters are monotone across snapshots
    last = now;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writers) th.join();
}

TEST(TraceConcurrency, SpansFromManyThreadsAllRecorded) {
  TraceWriter w;
  TraceWriter* prev = TraceWriter::install_global(&w);
  std::vector<std::thread> threads;
  constexpr int kSpans = 200;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        TraceSpan span("worker", "test");
        trace_instant("tick", "test");
      }
    });
  }
  for (auto& th : threads) th.join();
  TraceWriter::install_global(prev);
  EXPECT_EQ(w.event_count(),
            static_cast<std::size_t>(kThreads) * kSpans * 2);
}

}  // namespace
}  // namespace ccsig::obs

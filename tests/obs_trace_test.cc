#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace ccsig::obs {
namespace {

/// Restores the previous global writer even when a test fails mid-body.
class GlobalWriterGuard {
 public:
  explicit GlobalWriterGuard(TraceWriter* w)
      : prev_(TraceWriter::install_global(w)) {}
  ~GlobalWriterGuard() { TraceWriter::install_global(prev_); }

 private:
  TraceWriter* prev_;
};

TEST(TraceWriter, CompleteAndInstantEventsRender) {
  TraceWriter w;
  w.complete("span", "cat", 100, 50);
  w.instant("mark", "cat");
  EXPECT_EQ(w.event_count(), 2u);
  const std::string json = w.to_json("test_proc");
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("test_proc"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(TraceWriter, EventsSortedByTimestamp) {
  TraceWriter w;
  w.complete("later", "cat", 500, 10);
  w.complete("earlier", "cat", 100, 10);
  const std::string json = w.to_json();
  const auto early = json.find("\"name\":\"earlier\"");
  const auto late = json.find("\"name\":\"later\"");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, late);
}

TEST(TraceWriter, ParentSpanPrecedesChildAtSameTimestamp) {
  TraceWriter w;
  w.complete("child", "cat", 100, 10);
  w.complete("parent", "cat", 100, 100);  // longer duration: must come first
  const std::string json = w.to_json();
  EXPECT_LT(json.find("\"name\":\"parent\""), json.find("\"name\":\"child\""));
}

TEST(TraceWriter, NegativeDurationClampedToZero) {
  TraceWriter w;
  w.complete("span", "cat", 100, -5);
  EXPECT_NE(w.to_json().find("\"dur\":0"), std::string::npos);
}

TEST(TraceWriter, EmptyWriterStillRendersValidSkeleton) {
  TraceWriter w;
  const std::string json = w.to_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceSpan, NoOpWithoutGlobalWriter) {
  GlobalWriterGuard guard(nullptr);
  { TraceSpan span("unrecorded", "cat"); }
  trace_instant("unrecorded", "cat");
  // Nothing to assert beyond "does not crash": there is no writer.
}

TEST(TraceSpan, RecordsIntoInstalledGlobalWriter) {
  TraceWriter w;
  GlobalWriterGuard guard(&w);
  {
    TraceSpan outer("outer", "test");
    TraceSpan inner("inner", "test");
    trace_instant("tick", "test");
  }
  EXPECT_EQ(w.event_count(), 3u);
  const std::string json = w.to_json();
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tick\""), std::string::npos);
}

TEST(TraceSpan, SpanCapturesWriterAtConstruction) {
  TraceWriter w;
  TraceWriter* prev = TraceWriter::install_global(&w);
  {
    TraceSpan span("captured", "test");
    // Uninstall mid-span: the span still records into the writer it saw.
    TraceWriter::install_global(nullptr);
  }
  TraceWriter::install_global(prev);
  EXPECT_EQ(w.event_count(), 1u);
}

TEST(TraceWriter, JsonEscapesEventNames) {
  TraceWriter w;
  w.instant("quote\"name", "cat");
  EXPECT_NE(w.to_json().find("quote\\\"name"), std::string::npos);
}

}  // namespace
}  // namespace ccsig::obs

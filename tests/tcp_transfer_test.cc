// End-to-end TCP transfers over the simulator: delivery correctness,
// throughput, loss recovery, receiver windows, and delayed ACKs.
#include <gtest/gtest.h>

#include "test_helpers.h"

namespace ccsig {
namespace {

using testutil::basic_link;
using testutil::run_transfer;
using testutil::TwoNodePath;

TEST(TcpTransfer, DeliversAllBytesInOrder) {
  // Small enough that slow start never overflows the 125 KB buffer: a
  // truly loss-free transfer.
  TwoNodePath path(basic_link(10e6, 10, 100));
  const std::uint64_t bytes = 100'000;
  const auto result = run_transfer(path, bytes);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.sink_stats.bytes_received, bytes);
  EXPECT_EQ(result.source_stats.bytes_acked, bytes);
  EXPECT_EQ(result.source_stats.retransmits, 0u);  // clean path
}

TEST(TcpTransfer, SlowStartOvershootSelfHeals) {
  // A transfer larger than BDP+buffer must overflow the drop-tail queue at
  // slow-start overshoot and recover without losing correctness.
  TwoNodePath path(basic_link(10e6, 10, 100));
  const std::uint64_t bytes = 2'000'000;
  const auto result = run_transfer(path, bytes);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.sink_stats.bytes_received, bytes);
  EXPECT_GT(result.source_stats.retransmits, 0u);
  EXPECT_GT(path.down->stats().buffer_drops, 0u);
}

TEST(TcpTransfer, ThroughputApproachesLinkRate) {
  TwoNodePath path(basic_link(20e6, 10, 100));
  const std::uint64_t bytes = 10'000'000;  // 10 MB over 20 Mbps ~ 4 s
  const auto result = run_transfer(path, bytes);
  ASSERT_TRUE(result.completed);
  const double tput =
      static_cast<double>(bytes) * 8.0 / sim::to_seconds(result.completed_at);
  EXPECT_GT(tput, 0.85 * 20e6);
  EXPECT_LT(tput, 20e6 * 1.01);  // cannot beat the link
}

TEST(TcpTransfer, CompletesDespiteRandomLoss) {
  TwoNodePath path(basic_link(10e6, 10, 100, /*loss=*/0.01));
  const std::uint64_t bytes = 2'000'000;
  const auto result = run_transfer(path, bytes);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.sink_stats.bytes_received, bytes);
  EXPECT_GT(result.source_stats.retransmits, 0u);
}

TEST(TcpTransfer, HeavyLossStillCompletes) {
  TwoNodePath path(basic_link(10e6, 5, 100, /*loss=*/0.05));
  const std::uint64_t bytes = 500'000;
  const auto result = run_transfer(path, bytes);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.sink_stats.bytes_received, bytes);
}

TEST(TcpTransfer, SackBeatsNewRenoUnderBurstLoss) {
  // A tight buffer forces burst losses at slow-start overshoot; SACK
  // recovery should finish the transfer significantly faster.
  const std::uint64_t bytes = 4'000'000;
  TwoNodePath sack_path(basic_link(20e6, 20, 30), 3);
  const auto with_sack = run_transfer(sack_path, bytes, "reno",
                                      sim::from_seconds(300), true);
  TwoNodePath newreno_path(basic_link(20e6, 20, 30), 3);
  const auto without_sack = run_transfer(newreno_path, bytes, "reno",
                                         sim::from_seconds(300), false);
  ASSERT_TRUE(with_sack.completed);
  ASSERT_TRUE(without_sack.completed);
  EXPECT_LT(with_sack.completed_at, without_sack.completed_at);
}

TEST(TcpTransfer, ReceiverWindowLimitsThroughput) {
  TwoNodePath path(basic_link(100e6, 20, 100));
  const sim::FlowKey key = path.flow_key();
  tcp::TcpSink::Config sink_cfg;
  sink_cfg.data_key = key;
  sink_cfg.rwnd_bytes = 64 * 1024;  // 64 KB over 40 ms RTT ~ 13 Mbps max
  tcp::TcpSink sink(path.net.sim(), path.client, sink_cfg);

  tcp::TcpSource::Config src_cfg;
  src_cfg.key = key;
  src_cfg.bytes_to_send = 4'000'000;
  tcp::TcpSource source(path.net.sim(), path.server, src_cfg);
  bool completed = false;
  sim::Time done_at = 0;
  source.set_on_complete([&] {
    completed = true;
    done_at = path.net.sim().now();
  });
  source.start();
  path.net.sim().run_until(sim::from_seconds(60));
  ASSERT_TRUE(completed);
  const double tput = 4'000'000 * 8.0 / sim::to_seconds(done_at);
  EXPECT_LT(tput, 17e6);  // far below the 100 Mbps link
  const auto stats = source.stats();
  EXPECT_GT(stats.time_receiver_limited, stats.time_congestion_limited);
}

TEST(TcpTransfer, DelayedAckReducesAckCount) {
  TwoNodePath every(basic_link(10e6, 10, 100));
  const auto r1 = run_transfer(every, 1'000'000, "reno",
                               sim::from_seconds(60), true,
                               /*segments_per_ack=*/1);
  TwoNodePath delayed(basic_link(10e6, 10, 100));
  const auto r2 = run_transfer(delayed, 1'000'000, "reno",
                               sim::from_seconds(60), true,
                               /*segments_per_ack=*/2);
  ASSERT_TRUE(r1.completed);
  ASSERT_TRUE(r2.completed);
  EXPECT_GT(r1.sink_stats.acks_sent, r2.sink_stats.acks_sent);
}

TEST(TcpTransfer, CubicCompletesAndFillsLink) {
  TwoNodePath path(basic_link(20e6, 10, 100));
  const std::uint64_t bytes = 10'000'000;
  const auto result = run_transfer(path, bytes, "cubic");
  ASSERT_TRUE(result.completed);
  const double tput =
      static_cast<double>(bytes) * 8.0 / sim::to_seconds(result.completed_at);
  EXPECT_GT(tput, 0.85 * 20e6);
}

TEST(TcpTransfer, BbrCompletesWithLowQueueing) {
  TwoNodePath path(basic_link(20e6, 10, 100));
  const std::uint64_t bytes = 10'000'000;
  const auto result = run_transfer(path, bytes, "bbr");
  ASSERT_TRUE(result.completed);
  const double tput =
      static_cast<double>(bytes) * 8.0 / sim::to_seconds(result.completed_at);
  EXPECT_GT(tput, 0.7 * 20e6);
  // BBR should keep the standing queue well below a loss-based sender's.
  EXPECT_LT(path.down->stats().max_queue_bytes,
            sim::buffer_bytes_for(20e6, 100));
}

TEST(TcpTransfer, StopSendingEndsTimedTest) {
  TwoNodePath path(basic_link(10e6, 10, 100));
  const sim::FlowKey key = path.flow_key();
  tcp::TcpSink::Config sink_cfg;
  sink_cfg.data_key = key;
  tcp::TcpSink sink(path.net.sim(), path.client, sink_cfg);
  tcp::TcpSource::Config src_cfg;
  src_cfg.key = key;
  src_cfg.bytes_to_send = 0;  // unbounded timed test
  tcp::TcpSource source(path.net.sim(), path.server, src_cfg);
  source.start();
  path.net.sim().schedule_at(sim::from_seconds(2),
                             [&] { source.stop_sending(); });
  path.net.sim().run_until(sim::from_seconds(5));
  const std::uint64_t received = sink.bytes_received();
  EXPECT_GT(received, 1'000'000u);  // got most of 2 s at 10 Mbps
  path.net.sim().run_until(sim::from_seconds(10));
  // Nothing more after the drain completes.
  EXPECT_LE(sink.bytes_received() - received, 200'000u);
}

TEST(TcpTransfer, RateLimitedSourceHoldsAppRate) {
  TwoNodePath path(basic_link(50e6, 5, 100));
  const sim::FlowKey key = path.flow_key();
  tcp::TcpSink::Config sink_cfg;
  sink_cfg.data_key = key;
  tcp::TcpSink sink(path.net.sim(), path.client, sink_cfg);
  tcp::TcpSource::Config src_cfg;
  src_cfg.key = key;
  src_cfg.app_rate_bps = 4e6;
  tcp::TcpSource source(path.net.sim(), path.server, src_cfg);
  source.start();
  path.net.sim().run_until(sim::from_seconds(10));
  const double tput = static_cast<double>(sink.bytes_received()) * 8.0 / 10.0;
  EXPECT_NEAR(tput, 4e6, 0.4e6);
  const auto stats = source.stats();
  EXPECT_GT(stats.time_application_limited, stats.time_congestion_limited);
}

TEST(TcpTransfer, QuotaModeDeliversChunks) {
  TwoNodePath path(basic_link(50e6, 5, 100));
  const sim::FlowKey key = path.flow_key();
  tcp::TcpSink::Config sink_cfg;
  sink_cfg.data_key = key;
  tcp::TcpSink sink(path.net.sim(), path.client, sink_cfg);
  tcp::TcpSource::Config src_cfg;
  src_cfg.key = key;
  src_cfg.quota_mode = true;
  tcp::TcpSource source(path.net.sim(), path.server, src_cfg);
  source.start();
  source.release_app_bytes(100'000);
  path.net.sim().run_until(sim::from_seconds(1));
  EXPECT_EQ(sink.bytes_received(), 100'000u);
  EXPECT_EQ(source.app_backlog(), 0u);
  source.release_app_bytes(50'000);
  path.net.sim().run_until(sim::from_seconds(2));
  EXPECT_EQ(sink.bytes_received(), 150'000u);
}

TEST(TcpTransfer, FixedPacingCapsRate) {
  TwoNodePath path(basic_link(100e6, 5, 100));
  const sim::FlowKey key = path.flow_key();
  tcp::TcpSink::Config sink_cfg;
  sink_cfg.data_key = key;
  tcp::TcpSink sink(path.net.sim(), path.client, sink_cfg);
  tcp::TcpSource::Config src_cfg;
  src_cfg.key = key;
  src_cfg.fixed_pacing_bps = 10e6;
  tcp::TcpSource source(path.net.sim(), path.server, src_cfg);
  source.start();
  path.net.sim().run_until(sim::from_seconds(10));
  const double tput = static_cast<double>(sink.bytes_received()) * 8.0 / 10.0;
  EXPECT_LT(tput, 11e6);
  EXPECT_GT(tput, 7e6);
}

TEST(TcpTransfer, HandshakeSurvivesSynLoss) {
  // 30% loss on the data direction can eat the SYN; retry must recover.
  TwoNodePath path(basic_link(10e6, 10, 100, /*loss=*/0.3), 12);
  const auto result =
      run_transfer(path, 50'000, "reno", sim::from_seconds(120));
  EXPECT_TRUE(result.completed);
}

TEST(TcpTransfer, DuplicateDataIsNotDoubleCounted) {
  TwoNodePath path(basic_link(10e6, 10, 30, /*loss=*/0.02), 5);
  const std::uint64_t bytes = 1'000'000;
  const auto result = run_transfer(path, bytes);
  ASSERT_TRUE(result.completed);
  // Goodput accounting must be exact even with retransmissions.
  EXPECT_EQ(result.sink_stats.bytes_received, bytes);
}

}  // namespace
}  // namespace ccsig

#include "sim/queue.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace ccsig::sim {
namespace {

Packet make_packet(std::uint32_t payload) {
  Packet p;
  p.payload_bytes = payload;
  return p;
}

TEST(DropTailQueue, AcceptsWithinCapacity) {
  DropTailQueue q(1000);
  EXPECT_TRUE(q.push(make_packet(500)));  // 540 wire bytes
  EXPECT_EQ(q.occupancy_bytes(), 540u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q(600);
  EXPECT_TRUE(q.push(make_packet(500)));   // 540
  EXPECT_FALSE(q.push(make_packet(100)));  // 140 would exceed 600
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.dropped_bytes(), 140u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(1 << 20);
  for (std::uint32_t i = 1; i <= 5; ++i) ASSERT_TRUE(q.push(make_packet(i)));
  for (std::uint32_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(q.pop().payload_bytes, i);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.occupancy_bytes(), 0u);
}

TEST(DropTailQueue, MaxOccupancyHighWaterMark) {
  DropTailQueue q(10000);
  q.push(make_packet(1000));
  q.push(make_packet(1000));
  EXPECT_EQ(q.max_occupancy_bytes(), 2080u);
  q.pop();
  q.pop();
  EXPECT_EQ(q.max_occupancy_bytes(), 2080u);  // sticky
  EXPECT_EQ(q.occupancy_bytes(), 0u);
}

TEST(DropTailQueue, ZeroCapacityDropsEverything) {
  DropTailQueue q(0);
  EXPECT_FALSE(q.push(make_packet(1)));
  EXPECT_EQ(q.drops(), 1u);
}

TEST(PacketRing, FifoAcrossWraparound) {
  PacketRing ring;
  // Advance head past the initial capacity so pushes wrap the ring, then
  // check FIFO order survives the index masking.
  std::uint32_t next_in = 0;
  std::uint32_t next_out = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 11; ++i) ring.push(make_packet(next_in++));
    for (int i = 0; i < 11; ++i) {
      EXPECT_EQ(ring.pop().payload_bytes, next_out++);
    }
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.slot_capacity(), 16u);  // never needed to grow
}

TEST(PacketRing, GrowthLinearizesLiveSpan) {
  PacketRing ring;
  // Offset the head so the live span straddles the ring boundary, then
  // force growth and verify nothing is reordered or lost.
  for (std::uint32_t i = 0; i < 12; ++i) ring.push(make_packet(i));
  for (std::uint32_t i = 0; i < 12; ++i) EXPECT_EQ(ring.pop().payload_bytes, i);
  for (std::uint32_t i = 0; i < 40; ++i) ring.push(make_packet(100 + i));
  EXPECT_EQ(ring.size(), 40u);
  EXPECT_EQ(ring.slot_capacity(), 64u);
  for (std::uint32_t i = 0; i < 40; ++i) {
    EXPECT_EQ(ring.front().payload_bytes, 100 + i);
    EXPECT_EQ(ring.pop().payload_bytes, 100 + i);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.slot_capacity(), 64u);  // pool is sticky, never shrinks
}

// Property: under random push/pop traffic, occupancy never exceeds capacity
// and equals the sum of queued packets' wire bytes.
class QueueInvariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QueueInvariants, OccupancyAccountingHolds) {
  const std::size_t capacity = GetParam();
  DropTailQueue q(capacity);
  Rng rng(capacity);
  std::uint64_t expected = 0;
  std::size_t count = 0;
  for (int step = 0; step < 5000; ++step) {
    if (rng.chance(0.6)) {
      Packet p = make_packet(
          static_cast<std::uint32_t>(rng.uniform_int(0, 1460)));
      const std::size_t wire = p.wire_bytes();
      if (q.push(std::move(p))) {
        expected += wire;
        ++count;
      }
    } else if (!q.empty()) {
      expected -= q.pop().wire_bytes();
      --count;
    }
    ASSERT_LE(q.occupancy_bytes(), capacity);
    ASSERT_EQ(q.occupancy_bytes(), expected);
    ASSERT_EQ(q.size(), count);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, QueueInvariants,
                         ::testing::Values(100, 1500, 4096, 65536, 1 << 20));

}  // namespace
}  // namespace ccsig::sim

// Targeted loss-recovery tests with *deterministic* drops: a scriptable
// filter between the link and the receiving node drops exactly the chosen
// sequence ranges exactly once, so SACK scoreboard behaviour, limited
// transmit, and RTO fallback can be asserted precisely.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "analysis/flow_trace.h"
#include "analysis/slow_start.h"
#include "analysis/trace_recorder.h"
#include "analysis/rtt_estimator.h"
#include "sim/network.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"

namespace ccsig {
namespace {

class ScriptedLossPath {
 public:
  explicit ScriptedLossPath(std::uint64_t seed = 1) : net_(seed) {
    server_ = net_.add_node("server");
    client_ = net_.add_node("client");
    sim::Link::Config cfg;
    cfg.rate_bps = 10e6;
    cfg.prop_delay = 10 * sim::kMillisecond;
    cfg.buffer_bytes = 1 << 22;  // never overflows; drops are scripted only
    auto duplex = net_.connect(server_, client_, cfg);
    // Interpose the drop filter on the data direction.
    duplex.ab->set_receiver([this](const sim::Packet& p) {
      if (should_drop_ && p.payload_bytes > 0 && should_drop_(p)) {
        ++dropped_;
        return;
      }
      client_->receive(p);
    });
  }

  /// Raw drop filter: full control, including dropping retransmissions.
  void set_drop_filter(std::function<bool(const sim::Packet&)> pred) {
    should_drop_ = std::move(pred);
  }

  /// Drops each payload segment whose range matches the predicate, once
  /// per starting sequence (retransmissions get through).
  void drop_once_if(std::function<bool(const sim::Packet&)> pred) {
    should_drop_ = [this, pred = std::move(pred)](const sim::Packet& p) {
      const std::uint64_t id = p.seq;
      if (!pred(p) || already_dropped_.count(id)) return false;
      already_dropped_.insert(id);
      return true;
    };
  }

  struct Result {
    bool completed = false;
    sim::Time completed_at = 0;
    tcp::TcpSource::Stats stats;
  };

  Result transfer(std::uint64_t bytes, bool use_sack = true) {
    const sim::FlowKey key{server_->address(), client_->address(), 1, 2};
    tcp::TcpSink::Config sk;
    sk.data_key = key;
    tcp::TcpSink sink(net_.sim(), client_, sk);
    tcp::TcpSource::Config sc;
    sc.key = key;
    sc.bytes_to_send = bytes;
    sc.use_sack = use_sack;
    tcp::TcpSource source(net_.sim(), server_, sc);
    Result r;
    source.set_on_complete([&] {
      r.completed = true;
      r.completed_at = net_.sim().now();
    });
    source.start();
    net_.sim().run_until(sim::from_seconds(60));
    r.stats = source.stats();
    return r;
  }

  int dropped() const { return dropped_; }

 private:
  sim::Network net_;
  sim::Node* server_ = nullptr;
  sim::Node* client_ = nullptr;
  std::function<bool(const sim::Packet&)> should_drop_;
  std::set<std::uint64_t> already_dropped_;
  int dropped_ = 0;
};

TEST(TcpRecovery, SingleLossRecoversByFastRetransmit) {
  ScriptedLossPath path;
  // Drop the segment starting at offset ~30 KB (mid-window), once.
  path.drop_once_if([](const sim::Packet& p) { return p.seq == 28961; });
  const auto r = path.transfer(300'000);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(path.dropped(), 1);
  EXPECT_EQ(r.stats.fast_retransmits, 1u);
  EXPECT_EQ(r.stats.timeouts, 0u);  // never needed the timer
  EXPECT_EQ(r.stats.retransmits, 1u);
}

TEST(TcpRecovery, BurstLossRepairedWithinRecovery) {
  ScriptedLossPath path;
  // Drop eight consecutive segments from one window.
  path.drop_once_if([](const sim::Packet& p) {
    return p.seq >= 28961 && p.seq < 28961 + 8 * 1448;
  });
  const auto r = path.transfer(400'000);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(path.dropped(), 8);
  // SACK repairs the whole burst inside one recovery episode, no RTO.
  EXPECT_EQ(r.stats.timeouts, 0u);
  EXPECT_EQ(r.stats.fast_retransmits, 1u);
  EXPECT_EQ(r.stats.retransmits, 8u);
}

TEST(TcpRecovery, NewRenoNeedsLongerForBurst) {
  ScriptedLossPath sack_path;
  sack_path.drop_once_if([](const sim::Packet& p) {
    return p.seq >= 28961 && p.seq < 28961 + 8 * 1448;
  });
  const auto with_sack = sack_path.transfer(400'000, /*use_sack=*/true);

  ScriptedLossPath nr_path;
  nr_path.drop_once_if([](const sim::Packet& p) {
    return p.seq >= 28961 && p.seq < 28961 + 8 * 1448;
  });
  const auto newreno = nr_path.transfer(400'000, /*use_sack=*/false);

  ASSERT_TRUE(with_sack.completed);
  ASSERT_TRUE(newreno.completed);
  // NewReno retransmits one hole per RTT; SACK fixes all 8 in ~1 RTT.
  EXPECT_LT(with_sack.completed_at, newreno.completed_at);
}

TEST(TcpRecovery, LostRetransmissionFallsBackToRto) {
  ScriptedLossPath path;
  // Drop the original AND its first retransmission; only the third copy
  // (driven by the retransmission timer) gets through.
  int drops_of_target = 0;
  path.set_drop_filter([&](const sim::Packet& p) {
    if (p.seq == 28961 && drops_of_target < 2) {
      ++drops_of_target;
      return true;
    }
    return false;
  });
  const auto r = path.transfer(300'000);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(drops_of_target, 2);
  EXPECT_GE(r.stats.timeouts, 1u);
  EXPECT_EQ(r.stats.bytes_acked, 300'000u);
}

TEST(TcpRecovery, TailLossRecoveredByTimeout) {
  ScriptedLossPath path;
  // Drop the very last segment of the transfer: no later data means no
  // duplicate ACKs, so only the retransmission timer can save it.
  path.drop_once_if([](const sim::Packet& p) {
    return p.seq + p.payload_bytes == 300'001;  // final byte of 300 kB
  });
  const auto r = path.transfer(300'000);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(path.dropped(), 1);
  EXPECT_GE(r.stats.timeouts, 1u);
}

TEST(TcpRecovery, EveryLossPatternDeliversExactly) {
  // Property-style sweep: different scripted loss shapes must never corrupt
  // delivery (completeness is checked by on_complete firing, which requires
  // every byte ACKed).
  const std::uint64_t kBytes = 250'000;
  const std::vector<std::function<bool(const sim::Packet&)>> patterns = {
      [](const sim::Packet& p) { return p.seq % 7 == 1 && p.seq < 100'000; },
      [](const sim::Packet& p) { return p.seq > 50'000 && p.seq < 80'000; },
      [](const sim::Packet& p) { return p.seq == 1; },  // very first segment
      [](const sim::Packet&) { return false; },         // control: no loss
  };
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    ScriptedLossPath path(100 + i);
    path.drop_once_if(patterns[i]);
    const auto r = path.transfer(kBytes);
    EXPECT_TRUE(r.completed) << "pattern " << i;
    EXPECT_EQ(r.stats.bytes_acked, kBytes) << "pattern " << i;
  }
}

TEST(TcpRecovery, TraceShowsRetransmissionForAnalysis) {
  // The analysis layer must see the scripted loss as a retransmission
  // (sequence regression) in the server-side trace.
  ScriptedLossPath path;
  path.drop_once_if([](const sim::Packet& p) { return p.seq == 28961; });

  // Rebuild with a recorder: simpler to re-run with a fresh path + tap.
  sim::Network net(9);
  sim::Node* server = net.add_node("server");
  sim::Node* client = net.add_node("client");
  sim::Link::Config cfg;
  cfg.rate_bps = 10e6;
  cfg.prop_delay = 10 * sim::kMillisecond;
  cfg.buffer_bytes = 1 << 22;
  auto duplex = net.connect(server, client, cfg);
  bool dropped = false;
  duplex.ab->set_receiver([&](const sim::Packet& p) {
    if (!dropped && p.seq == 28961 && p.payload_bytes > 0) {
      dropped = true;
      return;
    }
    client->receive(p);
  });
  analysis::TraceRecorder recorder;
  server->add_tap(&recorder);
  const sim::FlowKey key{server->address(), client->address(), 1, 2};
  tcp::TcpSink::Config sk;
  sk.data_key = key;
  tcp::TcpSink sink(net.sim(), client, sk);
  tcp::TcpSource::Config sc;
  sc.key = key;
  sc.bytes_to_send = 300'000;
  tcp::TcpSource source(net.sim(), server, sc);
  source.start();
  net.sim().run_until(sim::from_seconds(30));

  const auto flow = analysis::extract_flow(recorder.trace(), key);
  const auto ss = analysis::detect_slow_start(flow);
  EXPECT_TRUE(ss.ended_by_retransmission);
}

}  // namespace
}  // namespace ccsig

#include "pcap/headers.h"

#include <gtest/gtest.h>

namespace ccsig::pcap {
namespace {

sim::Packet sample_packet() {
  sim::Packet p;
  p.key = sim::FlowKey{5, 9, 5001, 5002};
  p.seq = 12345;
  p.ack = 999;
  p.payload_bytes = 1448;
  p.window = 256 * 1024;
  p.flags.ack = true;
  p.id = 77;
  return p;
}

TEST(Headers, RoundTripBasicFields) {
  const sim::Packet p = sample_packet();
  const auto frame = encode_frame(p);
  const auto d = decode_frame(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src_ip, to_ipv4(5));
  EXPECT_EQ(d->dst_ip, to_ipv4(9));
  EXPECT_EQ(d->src_port, 5001);
  EXPECT_EQ(d->dst_port, 5002);
  EXPECT_EQ(d->seq32, 12345u);
  EXPECT_EQ(d->ack32, 999u);
  EXPECT_EQ(d->payload_bytes, 1448u);
  EXPECT_TRUE(d->ack);
  EXPECT_FALSE(d->syn);
  EXPECT_FALSE(d->fin);
  EXPECT_FALSE(d->rst);
}

TEST(Headers, AllFlagsRoundTrip) {
  sim::Packet p = sample_packet();
  p.flags = sim::TcpFlags{true, true, true, true};
  const auto d = decode_frame(encode_frame(p));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->syn);
  EXPECT_TRUE(d->ack);
  EXPECT_TRUE(d->fin);
  EXPECT_TRUE(d->rst);
}

TEST(Headers, SequenceWrapsAt32Bits) {
  sim::Packet p = sample_packet();
  p.seq = (1ull << 32) + 42;
  const auto d = decode_frame(encode_frame(p));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->seq32, 42u);
}

TEST(Headers, WindowScaleRoundTripsWithinPrecision) {
  sim::Packet p = sample_packet();
  p.window = 1 << 20;  // 1 MB
  const auto d = decode_frame(encode_frame(p));
  ASSERT_TRUE(d.has_value());
  // Encoded as window >> 8 (wscale 8), so the reader re-expands exactly.
  EXPECT_EQ(static_cast<std::uint32_t>(d->window) << 8, p.window);
}

TEST(Headers, Ipv4ChecksumValidates) {
  const auto frame = encode_frame(sample_packet());
  // Recompute over the IP header; a correct checksum field makes the sum 0.
  const std::uint16_t sum = internet_checksum(
      {frame.data() + kEthernetHeaderBytes, kIpv4HeaderBytes});
  EXPECT_EQ(sum, 0);
}

TEST(Headers, ChecksumKnownVector) {
  // RFC 1071 style check: a buffer whose checksum we can compute by hand.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2DDF0 -> 0xDDF2 -> ~ = 0x220D.
  EXPECT_EQ(internet_checksum(data), 0x220D);
}

TEST(Headers, ChecksumOddLength) {
  const std::uint8_t data[] = {0xAB};
  EXPECT_EQ(internet_checksum(data),
            static_cast<std::uint16_t>(~0xAB00 & 0xFFFF));
}

TEST(Headers, DecodeRejectsShortBuffer) {
  std::uint8_t tiny[10] = {};
  EXPECT_FALSE(decode_frame(tiny).has_value());
}

TEST(Headers, DecodeRejectsNonIpv4Ethertype) {
  auto frame = encode_frame(sample_packet());
  frame[12] = 0x86;  // IPv6 ethertype
  frame[13] = 0xDD;
  EXPECT_FALSE(decode_frame(frame).has_value());
}

TEST(Headers, DecodeRejectsNonTcpProtocol) {
  auto frame = encode_frame(sample_packet());
  frame[kEthernetHeaderBytes + 9] = 17;  // UDP
  EXPECT_FALSE(decode_frame(frame).has_value());
}

TEST(Headers, IpTotalLengthAccountsForPayload) {
  sim::Packet p = sample_packet();
  p.payload_bytes = 777;
  const auto d = decode_frame(encode_frame(p));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload_bytes, 777u);
}

TEST(Headers, ZeroWindowEncodesAsZero) {
  sim::Packet p = sample_packet();
  p.window = 0;
  const auto d = decode_frame(encode_frame(p));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->window, 0);
}

}  // namespace
}  // namespace ccsig::pcap

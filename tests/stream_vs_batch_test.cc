// Differential harness: the streaming engine must be byte-equivalent to
// the batch pipeline on a large corpus of randomized simulated captures —
// identical FlowFeatures, verdicts, and rendered report lines, at any
// worker count.
//
// The corpus size defaults to 200 seeds and can be overridden with the
// CCSIG_STREAM_DIFF_COUNT environment variable (sanitized runs use a
// smaller corpus; a local soak can use a larger one).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "stream/stream.h"
#include "test_helpers.h"

namespace ccsig {
namespace {

namespace fs = std::filesystem;

int corpus_size() {
  if (const char* env = std::getenv("CCSIG_STREAM_DIFF_COUNT")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

/// Full bit-level equality of two reports. Doubles are compared with ==
/// (never NaN here: degenerate stats are filtered into insufficiencies),
/// so any drift in the arithmetic order of either path fails loudly.
void expect_reports_equal(const FlowReport& batch, const FlowReport& stream,
                          const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(batch.data_key, stream.data_key);
  EXPECT_EQ(batch.duration, stream.duration);
  EXPECT_EQ(batch.data_packets, stream.data_packets);
  EXPECT_EQ(batch.throughput_bps, stream.throughput_bps);
  EXPECT_EQ(batch.estimated_capacity_bps, stream.estimated_capacity_bps);
  EXPECT_EQ(batch.insufficiency, stream.insufficiency);
  EXPECT_EQ(batch.verdict(), stream.verdict());
  ASSERT_EQ(batch.features.has_value(), stream.features.has_value());
  if (batch.features) {
    EXPECT_EQ(batch.features->norm_diff, stream.features->norm_diff);
    EXPECT_EQ(batch.features->cov, stream.features->cov);
    EXPECT_EQ(batch.features->rtt_slope, stream.features->rtt_slope);
    EXPECT_EQ(batch.features->rtt_iqr, stream.features->rtt_iqr);
    EXPECT_EQ(batch.features->rtt_samples, stream.features->rtt_samples);
    EXPECT_EQ(batch.features->min_rtt_ms, stream.features->min_rtt_ms);
    EXPECT_EQ(batch.features->max_rtt_ms, stream.features->max_rtt_ms);
    EXPECT_EQ(batch.features->slow_start_throughput_bps,
              stream.features->slow_start_throughput_bps);
    EXPECT_EQ(batch.features->flow_throughput_bps,
              stream.features->flow_throughput_bps);
    EXPECT_EQ(batch.features->slow_start_ended_by_retransmission,
              stream.features->slow_start_ended_by_retransmission);
    EXPECT_EQ(batch.features->flow_duration, stream.features->flow_duration);
  }
  ASSERT_EQ(batch.classification.has_value(),
            stream.classification.has_value());
  if (batch.classification) {
    EXPECT_EQ(batch.classification->verdict, stream.classification->verdict);
    EXPECT_EQ(batch.classification->confidence,
              stream.classification->confidence);
  }
  // The rendered line is what the tool prints; equal strings are the
  // end-to-end byte-identity the --stream flag promises.
  EXPECT_EQ(FlowAnalyzer::render(batch), FlowAnalyzer::render(stream));
}

void expect_analyses_equal(const PcapAnalysis& batch,
                           const PcapAnalysis& stream,
                           const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(batch.ok(), stream.ok());
  ASSERT_EQ(batch.reports.size(), stream.reports.size());
  for (std::size_t i = 0; i < batch.reports.size(); ++i) {
    expect_reports_equal(batch.reports[i], stream.reports[i],
                         context + " flow " + std::to_string(i));
  }
}

TEST(StreamVsBatch, RandomizedCorpusIsByteIdenticalAtAnyJobs) {
  const fs::path dir =
      fs::temp_directory_path() / "ccsig_stream_diff_corpus";
  fs::create_directories(dir);
  const FlowAnalyzer analyzer;
  const int seeds = corpus_size();

  int multi_flow_captures = 0;
  int classified_flows = 0;
  for (int seed = 0; seed < seeds; ++seed) {
    const std::string pcap =
        (dir / ("trace_" + std::to_string(seed) + ".pcap")).string();
    const int flows = testutil::write_random_capture(
        static_cast<std::uint64_t>(seed), pcap);
    if (flows > 1) ++multi_flow_captures;

    const PcapAnalysis batch = analyzer.analyze_pcap_checked(pcap);
    ASSERT_TRUE(batch.ok());
    for (const FlowReport& r : batch.reports) {
      classified_flows += r.classification.has_value() ? 1 : 0;
    }

    for (const unsigned jobs : {1u, 4u}) {
      stream::StreamConfig cfg;
      cfg.jobs = jobs;
      const PcapAnalysis streamed =
          stream::analyze_pcap_stream(pcap, analyzer, cfg);
      expect_analyses_equal(
          batch, streamed,
          "seed " + std::to_string(seed) + " jobs " + std::to_string(jobs));
    }
    fs::remove(pcap);
  }
  fs::remove_all(dir);

  // The corpus must actually exercise the interesting paths: concurrent
  // flows in one capture, and flows that classify end to end.
  EXPECT_GT(multi_flow_captures, seeds / 4);
  EXPECT_GT(classified_flows, seeds / 4);
}

}  // namespace
}  // namespace ccsig

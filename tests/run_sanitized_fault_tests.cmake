# Configures a second build tree with ASan+UBSan, builds the fault-injection
# and ingestion-hardening tests, and runs them there. Registered as the
# `fault_tests_asan_ubsan` ctest by tests/CMakeLists.txt (only when the main
# build itself is unsanitized), so `ctest` on a default build also proves
# "no corrupted input crashes the readers" under the sanitizers.
#
# Invoked as:
#   cmake -DSOURCE_DIR=<repo> -DBUILD_DIR=<build>/fault-san
#         -P run_sanitized_fault_tests.cmake

foreach(var SOURCE_DIR BUILD_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

set(tests
  runtime_fault_injection_test
  runtime_supervised_test
  tcp_cc_conformance_test
  tcp_vegas_test
  tcp_westwood_test
  ingest_corpus_test
  core_insufficient_test
  campaign_resume_test
  ml_presort_equivalence_test
  mlab_rowstore_test
  stream_flow_table_test
  stream_vs_batch_test
  pcap_tail_test
  service_fault_test
  service_admin_test
  obs_window_test
)

message(STATUS "[fault-san] configuring sanitized tree in ${BUILD_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DCMAKE_BUILD_TYPE=RelWithDebInfo
          -DCCSIG_ENABLE_ASAN=ON
          -DCCSIG_ENABLE_UBSAN=ON
          # The sanitized tree must not recursively register this script.
          -DCCSIG_SANITIZED_FAULT_TESTS=OFF
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[fault-san] configure failed (${rc})")
endif()

include(ProcessorCount)
ProcessorCount(nproc)
if(nproc EQUAL 0)
  set(nproc 2)
endif()

message(STATUS "[fault-san] building ${tests}")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --parallel ${nproc}
          --target ${tests}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[fault-san] build failed (${rc})")
endif()

# Undefined behaviour must fail the test, not just print.
set(ENV{UBSAN_OPTIONS} "halt_on_error=1:print_stacktrace=1")
set(ENV{ASAN_OPTIONS} "detect_leaks=0")
# The stream/batch differential corpus is 8x slower under the sanitizers;
# a 25-trace corpus keeps this run under the timeout while still covering
# multi-flow and multi-jobs cases.
set(ENV{CCSIG_STREAM_DIFF_COUNT} "25")

list(JOIN tests "|" test_regex)
message(STATUS "[fault-san] running sanitized tests")
execute_process(
  COMMAND ${CMAKE_CTEST_COMMAND} --test-dir ${BUILD_DIR}
          -R "^(${test_regex})$" --output-on-failure
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[fault-san] sanitized tests failed (${rc})")
endif()
message(STATUS "[fault-san] all sanitized fault tests passed")

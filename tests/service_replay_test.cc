// Record-and-replay crash safety, the tentpole acceptance test: a live
// run's session file replays to a byte-identical verdict log at any
// --jobs; a daemon SIGKILLed mid-replay (torn log tail included) restarts,
// truncates the tail, resumes, and converges on the same bytes.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/shutdown.h"
#include "service/service.h"
#include "test_helpers.h"

namespace ccsig::service {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

class ServiceReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime::ShutdownLatch::reset();
    const std::string stamp =
        std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
        "_" + std::to_string(counter_++);
    dir_ = (fs::temp_directory_path() / ("ccsig_replay_" + stamp)).string();
    fs::create_directories(dir_);
    capture_ = dir_ + "/capture.pcap";
    testutil::write_random_capture(31, capture_);
    session_ = dir_ + "/session.ses";
    live_log_ = dir_ + "/live.log";

    // The reference live run, recording its session.
    ServiceConfig cfg;
    SourceConfig sc;
    sc.path = capture_;
    sc.oneshot = true;
    cfg.sources.push_back(sc);
    cfg.verdict_log_path = live_log_;
    cfg.record_session_path = session_;
    cfg.oneshot = true;
    cfg.idle_sleep_ms = 0;
    ClassificationService live(std::move(cfg));
    ASSERT_EQ(live.run(), ClassificationService::kExitOk);
    live_bytes_ = read_bytes(live_log_);
    ASSERT_FALSE(live_bytes_.empty());
    ASSERT_GT(live.stats().verdicts_emitted, 0u);
  }
  void TearDown() override {
    runtime::ShutdownLatch::reset();
    fs::remove_all(dir_);
  }

  ServiceConfig replay_config(const std::string& log_name, unsigned jobs) {
    ServiceConfig cfg;
    cfg.verdict_log_path = dir_ + "/" + log_name;
    cfg.replay_session_path = session_;
    cfg.stream.jobs = jobs;
    return cfg;
  }

  static int counter_;
  std::string dir_;
  std::string capture_;
  std::string session_;
  std::string live_log_;
  std::vector<std::uint8_t> live_bytes_;
};

int ServiceReplayTest::counter_ = 0;

TEST_F(ServiceReplayTest, ReplayIsByteIdenticalAtAnyJobs) {
  for (const unsigned jobs : {1u, 4u}) {
    const std::string log = "replay_j" + std::to_string(jobs) + ".log";
    ClassificationService svc(replay_config(log, jobs));
    ASSERT_EQ(svc.run(), ClassificationService::kExitOk);
    EXPECT_EQ(read_bytes(dir_ + "/" + log), live_bytes_)
        << "jobs=" << jobs << " diverged from the live log";
  }
}

TEST_F(ServiceReplayTest, TornLogResumesToIdenticalBytes) {
  // Simulate a SIGKILL: a prefix of the live log plus a partial frame.
  const std::string log = dir_ + "/resume.log";
  const std::vector<std::string> lines = VerdictLog::read_all(live_log_);
  ASSERT_GE(lines.size(), 1u);
  {
    VerdictLog prefix(log);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
      prefix.append(lines[i]);
    }
  }
  {
    std::ofstream out(log, std::ios::binary | std::ios::app);
    const char torn[] = {0x40, 0x00, 0x00, 0x00, 0x13, 0x37};
    out.write(torn, sizeof(torn));
  }
  ASSERT_NE(read_bytes(log), live_bytes_);

  // Restart: recover truncates the torn tail, the replay skips the intact
  // prefix and regenerates only the missing verdicts.
  ServiceConfig cfg = replay_config("resume.log", 4);
  ClassificationService svc(std::move(cfg));
  ASSERT_EQ(svc.run(), ClassificationService::kExitOk);
  EXPECT_EQ(svc.stats().verdicts_skipped_resume, lines.size() - 1);
  EXPECT_EQ(svc.stats().verdicts_emitted, 1u);
  EXPECT_EQ(read_bytes(log), live_bytes_);
}

#ifdef CCSIGD_BIN
TEST_F(ServiceReplayTest, SigkilledDaemonRestartsAndConverges) {
  const std::string log = dir_ + "/killed.log";

  // Paced replay so SIGKILL lands mid-run (and possibly mid-write);
  // whether it does or the child finishes first, the restart must
  // converge on the reference bytes.
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::execl(CCSIGD_BIN, CCSIGD_BIN, "--log", log.c_str(), "--replay",
            session_.c_str(), "--replay-pace-us", "5000", "--poll-records",
            "64", "--jobs", "2", "--quiet", static_cast<char*>(nullptr));
    _exit(127);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) || WIFEXITED(status));

  // Restart at a different jobs count, full speed.
  for (const char* jobs : {"1", "4"}) {
    pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::execl(CCSIGD_BIN, CCSIGD_BIN, "--log", log.c_str(), "--replay",
              session_.c_str(), "--jobs", jobs, "--quiet",
              static_cast<char*>(nullptr));
      _exit(127);
    }
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
    EXPECT_EQ(read_bytes(log), live_bytes_) << "restart at jobs=" << jobs;
  }
}
#endif  // CCSIGD_BIN

}  // namespace
}  // namespace ccsig::service

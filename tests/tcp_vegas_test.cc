// Behavioral tests for the delay-based slow-start/backoff variants: TCP
// Vegas and CUBIC's HyStart toggle. The paper's §6 point is that
// delay-reacting senders confound the self-induced-congestion signature —
// they back off on rising RTT *without* a loss — so these tests pin
// exactly that: window reduction and slow-start exit driven purely by RTT
// inflation, plus end-to-end runs on deep-buffered links where a
// loss-based sender must overshoot and a delay-based one must not.
#include "tcp/vegas.h"

#include <gtest/gtest.h>

#include <sstream>

#include "tcp/congestion_control.h"
#include "test_helpers.h"
#include "testbed/sweep.h"

namespace ccsig::tcp {
namespace {

using sim::kMillisecond;

constexpr std::uint32_t kMss = 1448;

/// Feeds `rounds` Vegas rounds of single-MSS ACKs at a fixed RTT. Round
/// boundaries are byte-counted (one cwnd of data), matching the module.
void feed_rounds(VegasCongestionControl& cc, int rounds, sim::Duration rtt) {
  for (int r = 0; r < rounds; ++r) {
    const std::uint64_t round_len = cc.cwnd_bytes();
    for (std::uint64_t acked = 0; acked < round_len; acked += kMss) {
      cc.on_ack(kMss, rtt, 0);
    }
  }
}

TEST(Vegas, LearnsBaseRttFromMinimum) {
  VegasCongestionControl cc(kMss);
  cc.on_ack(kMss, 30 * kMillisecond, 0);
  EXPECT_EQ(cc.base_rtt(), 30 * kMillisecond);
  cc.on_ack(kMss, 10 * kMillisecond, 0);
  EXPECT_EQ(cc.base_rtt(), 10 * kMillisecond);
  cc.on_ack(kMss, 50 * kMillisecond, 0);  // inflation never raises the base
  EXPECT_EQ(cc.base_rtt(), 10 * kMillisecond);
}

TEST(Vegas, ExitsSlowStartOnQueueBuildupWithoutLoss) {
  VegasCongestionControl cc(kMss);
  ASSERT_TRUE(cc.in_slow_start());
  // One clean round pins baseRTT, then rounds at double the base: the
  // backlog estimate exceeds gamma and slow start must end — no on_loss.
  feed_rounds(cc, 1, 10 * kMillisecond);
  feed_rounds(cc, 2, 20 * kMillisecond);
  EXPECT_FALSE(cc.in_slow_start());
  EXPECT_GE(cc.cwnd_bytes(), kMss);
}

TEST(Vegas, BacksOffOnRisingRttWithoutLoss) {
  VegasCongestionControl cc(kMss);
  feed_rounds(cc, 1, 10 * kMillisecond);
  feed_rounds(cc, 2, 20 * kMillisecond);  // leave slow start
  ASSERT_FALSE(cc.in_slow_start());
  const std::uint64_t before = cc.cwnd_bytes();
  // Heavy inflation: backlog estimate far above beta, so every round
  // shaves one MSS. The window shrinks although on_loss never ran.
  feed_rounds(cc, 4, 60 * kMillisecond);
  EXPECT_LT(cc.cwnd_bytes(), before);
  EXPECT_GE(cc.cwnd_bytes(), 2ull * kMss);
}

TEST(Vegas, GrowsWhenPathHasSpareCapacity) {
  VegasCongestionControl cc(kMss);
  feed_rounds(cc, 1, 10 * kMillisecond);
  feed_rounds(cc, 2, 20 * kMillisecond);  // leave slow start
  const std::uint64_t before = cc.cwnd_bytes();
  // RTT back at the base: backlog estimate ~0 < alpha -> one MSS per round.
  feed_rounds(cc, 3, 10 * kMillisecond);
  EXPECT_GT(cc.cwnd_bytes(), before);
}

TEST(Vegas, DeepBufferTransferCompletesWithoutRetransmits) {
  // 8 Mbps / 20 ms prop / 300 ms buffer, zero random loss: a loss-based
  // sender only stops growing when it overflows the buffer; Vegas reads
  // the RTT inflation and settles early. Same link, same transfer.
  const std::uint64_t bytes = 2'000'000;
  testutil::TwoNodePath vegas_path(testutil::basic_link(8e6, 20, 300), 7);
  const auto vegas = testutil::run_transfer(vegas_path, bytes, "vegas");
  testutil::TwoNodePath reno_path(testutil::basic_link(8e6, 20, 300), 7);
  const auto reno = testutil::run_transfer(reno_path, bytes, "reno");

  ASSERT_TRUE(vegas.completed);
  ASSERT_TRUE(reno.completed);
  EXPECT_EQ(vegas.source_stats.retransmits, 0u);
  EXPECT_GT(reno.source_stats.retransmits, 0u);
  // Vegas keeps the standing queue at a few segments, so its RTT stays
  // near the propagation floor; Reno's sits on a full buffer.
  EXPECT_LT(vegas.source_stats.smoothed_rtt, reno.source_stats.smoothed_rtt);
}

TEST(Vegas, TransferIsDeterministic) {
  const auto once = [] {
    testutil::TwoNodePath path(testutil::basic_link(10e6, 15, 100), 3);
    const auto r = testutil::run_transfer(path, 500'000, "vegas");
    std::ostringstream out;
    out.precision(17);
    out << r.completed << ' ' << r.completed_at << ' '
        << r.source_stats.bytes_acked << ' ' << r.source_stats.segments_sent
        << ' ' << r.source_stats.retransmits << ' '
        << r.source_stats.cwnd_bytes << ' ' << r.source_stats.smoothed_rtt;
    return out.str();
  };
  EXPECT_EQ(once(), once());
}

// ---------------------------------------------------------------------------
// HyStart (the CUBIC toggle): end slow start on per-round delay increase.

TEST(Hystart, ExitsSlowStartOnDelayIncreaseWithoutLoss) {
  auto plain = make_cubic(kMss);
  auto hystart = make_cubic_hystart(kMss);
  EXPECT_EQ(hystart->name(), "cubic_hystart");

  // Identical ACK feeds: rounds of 12 samples whose RTT climbs 6 ms per
  // round (above HyStart's 4 ms eta floor). Plain CUBIC must keep slow-
  // starting; the HyStart variant must cap ssthresh at the current window.
  const auto feed = [](CongestionControl& cc) {
    sim::Time now = 0;
    for (int round = 0; round < 6; ++round) {
      const sim::Duration rtt = (10 + 6 * round) * kMillisecond;
      const std::uint64_t round_len = cc.cwnd_bytes();
      for (std::uint64_t acked = 0; acked < round_len; acked += kMss) {
        now += kMillisecond;
        cc.on_ack(kMss, rtt, now);
      }
    }
  };
  feed(*plain);
  feed(*hystart);

  EXPECT_TRUE(plain->in_slow_start());
  EXPECT_FALSE(hystart->in_slow_start());
  // The exit came from the delay signal, not a loss: the window kept its
  // slow-start value instead of taking a multiplicative cut.
  EXPECT_GE(hystart->cwnd_bytes(), hystart->ssthresh_bytes());
}

TEST(Hystart, DeepBufferTransferAvoidsSlowStartOvershoot) {
  // 20 Mbps / 20 ms / 150 ms buffer: plain CUBIC slow-starts into buffer
  // overflow; HyStart reads the queue from rising round RTTs and exits
  // slow start before the first drop.
  const std::uint64_t bytes = 2'500'000;
  testutil::TwoNodePath hy_path(testutil::basic_link(20e6, 20, 150), 11);
  const auto hy = testutil::run_transfer(hy_path, bytes, "cubic_hystart");
  testutil::TwoNodePath cubic_path(testutil::basic_link(20e6, 20, 150), 11);
  const auto cubic = testutil::run_transfer(cubic_path, bytes, "cubic");

  ASSERT_TRUE(hy.completed);
  ASSERT_TRUE(cubic.completed);
  EXPECT_EQ(hy.source_stats.retransmits, 0u);
  EXPECT_GT(cubic.source_stats.fast_retransmits, 0u);
}

// ---------------------------------------------------------------------------
// Sweep determinism: the parallel sweep must produce byte-identical rows
// for the new variant at any worker count.

TEST(Vegas, SweepRowsIdenticalAtAnyJobs) {
  testbed::SweepOptions opt;
  opt.access_rates_mbps = {10};
  opt.access_latencies_ms = {20};
  // High random loss: feature extraction needs a retransmission to bound
  // the slow-start phase, and Vegas — unlike Reno — exits slow start on
  // delay without overshooting the buffer, so only random drops provide it.
  opt.access_losses = {0.02};
  opt.access_buffers_ms = {20, 50};
  opt.reps = 1;
  // Full-scale links: the 0.1-scale grid shrinks the access link to 1 Mbps,
  // where slow start ends within a handful of RTT samples and feature
  // extraction refuses every flow (for any sender — the refactor
  // equivalence golden for that grid is legitimately empty).
  opt.scale = 1.0;
  opt.test_duration = sim::from_seconds(2);
  opt.warmup = sim::from_seconds(1);
  opt.congestion_control = "vegas";
  opt.seed = 9;

  opt.jobs = 1;
  const auto serial = testbed::run_sweep(opt);
  opt.jobs = 4;
  const auto parallel = testbed::run_sweep(opt);

  const auto render = [](const std::vector<testbed::SweepSample>& rows) {
    std::ostringstream out;
    out.precision(17);
    for (const auto& s : rows) {
      out << s.norm_diff << ',' << s.cov << ',' << s.rtt_slope << ','
          << s.rtt_iqr << ',' << s.slow_start_tput_bps << ','
          << s.flow_tput_bps << ',' << s.scenario << '\n';
    }
    return out.str();
  };
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(render(serial), render(parallel));
}

}  // namespace
}  // namespace ccsig::tcp

#include "runtime/progress.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace ccsig::runtime {
namespace {

TEST(ProgressCounter, TicksReportStrictlyIncreasingDone) {
  std::vector<std::size_t> seen;
  ProgressCounter counter(3, [&](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, 3u);
    seen.push_back(done);
  });
  counter.tick();
  counter.tick();
  counter.tick();
  EXPECT_EQ(seen, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(counter.done(), 3u);
  EXPECT_EQ(counter.total(), 3u);
}

TEST(ProgressCounter, CallbacksSerializedAcrossThreads) {
  // The callback is deliberately not thread-safe: the counter's lock must
  // serialize invocations so `seen` sees every value exactly once.
  std::vector<std::size_t> seen;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kEach = 500;
  ProgressCounter counter(kThreads * kEach,
                          [&](std::size_t done, std::size_t) {
                            seen.push_back(done);
                          });
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::size_t i = 0; i < kEach; ++i) counter.tick();
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(seen.size(), kThreads * kEach);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i + 1);  // exactly 1, 2, ..., N in order
  }
}

TEST(ProgressCounter, NullCallbackStillCounts) {
  ProgressCounter counter(2, nullptr);
  counter.tick();
  EXPECT_EQ(counter.done(), 1u);
}

TEST(ProgressReporterFormat, FullLineHasCountPercentRateAndEta) {
  // 50/200 after 10s -> 25%, 5.0/s, 30s remaining.
  EXPECT_EQ(ProgressReporter::format_line("sweep", 50, 200, 10.0),
            "[sweep] 50/200 25% 5.0/s eta 30s");
}

TEST(ProgressReporterFormat, FinalUpdateOmitsEta) {
  EXPECT_EQ(ProgressReporter::format_line("sweep", 200, 200, 10.0),
            "[sweep] 200/200 100% 20.0/s");
}

TEST(ProgressReporterFormat, NoElapsedOmitsRate) {
  EXPECT_EQ(ProgressReporter::format_line("job", 1, 4, 0.0),
            "[job] 1/4 25%");
}

TEST(ProgressReporterFormat, ZeroTotalOmitsPercent) {
  EXPECT_EQ(ProgressReporter::format_line("scan", 7, 0, 0.0), "[scan] 7/0");
}

TEST(ProgressReporterFormat, ZeroDoneOmitsRate) {
  EXPECT_EQ(ProgressReporter::format_line("job", 0, 4, 5.0), "[job] 0/4 0%");
}

TEST(ProgressReporter, WritesCompleteLinesToNonTtyStream) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  {
    ProgressReporterOptions opt;
    opt.label = "test";
    opt.min_interval_s = 0.0;  // no throttling: every update prints
    opt.stream = tmp;
    ProgressReporter reporter(opt);
    reporter.update(1, 2);
    reporter.update(2, 2);
  }
  std::rewind(tmp);
  char buf[256];
  std::string content;
  while (std::fgets(buf, sizeof(buf), tmp)) content += buf;
  std::fclose(tmp);
  EXPECT_NE(content.find("[test] 1/2 50%"), std::string::npos);
  EXPECT_NE(content.find("[test] 2/2 100%"), std::string::npos);
  // Non-tty mode: plain lines, no carriage-return redraws.
  EXPECT_EQ(content.find('\r'), std::string::npos);
}

TEST(ProgressReporter, ThrottlesIntermediateUpdates) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  {
    ProgressReporterOptions opt;
    opt.label = "thr";
    opt.min_interval_s = 3600.0;  // only the first and final updates print
    opt.stream = tmp;
    ProgressReporter reporter(opt);
    for (std::size_t i = 1; i <= 100; ++i) reporter.update(i, 100);
  }
  std::rewind(tmp);
  char buf[256];
  int lines = 0;
  while (std::fgets(buf, sizeof(buf), tmp)) ++lines;
  std::fclose(tmp);
  EXPECT_EQ(lines, 2);  // first (unthrottled) + final (always printed)
}

TEST(ProgressReporter, CallbackAdapterFeedsCounter) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  {
    ProgressReporterOptions opt;
    opt.label = "cb";
    opt.min_interval_s = 0.0;
    opt.stream = tmp;
    ProgressReporter reporter(opt);
    ProgressCounter counter(2, reporter.callback());
    counter.tick();
    counter.tick();
  }
  std::rewind(tmp);
  char buf[256];
  std::string content;
  while (std::fgets(buf, sizeof(buf), tmp)) content += buf;
  std::fclose(tmp);
  EXPECT_NE(content.find("[cb] 2/2 100%"), std::string::npos);
}

}  // namespace
}  // namespace ccsig::runtime

// Shared property suite for congestion-control modules.
//
// Every module in congestion_control_registry() — current and future — is
// run through the same hook-contract checks, so a new variant gets full
// conformance coverage just by registering itself. The properties mirror
// the contract documented in congestion_control.h:
//   - cwnd_bytes() never drops below 1 MSS after any hook;
//   - on_loss never pushes ssthresh above where the window was;
//   - enter_recovery / exit_recovery arrive strictly paired, and exit
//     never inflates the window past its pre-recovery value;
//   - after_idle never grows the window;
//   - no hook allocates (modules preallocate in their constructor),
//     verified with the same global operator-new counter the micro
//     benchmarks use for BM_TcpSteadyStateAllocs.
#include "tcp/congestion_control.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "sim/time.h"
#include "tcp/tcp_types.h"

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};

std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

/// Counts heap allocations across a scope (same pattern as
/// bench_micro_components.cc — deterministic, unlike timings).
class AllocProbe {
 public:
  AllocProbe() : start_(heap_allocs()) {}
  std::uint64_t count() const { return heap_allocs() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace

// Counting replacements for the global allocation functions. Only the
// plain forms are replaced; the hooks under test never use the aligned or
// nothrow forms.
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ccsig::tcp {
namespace {

using sim::kMillisecond;
using sim::kSecond;

constexpr std::uint32_t kMss = 1448;

class CcConformanceTest
    : public ::testing::TestWithParam<CongestionControlInfo> {
 protected:
  std::unique_ptr<CongestionControl> make() const {
    auto cc = GetParam().factory(kMss);
    cc->init(0);
    return cc;
  }
};

/// Drives one module through a realistic connection: slow start, a fast
/// retransmit with a paired recovery episode, congestion avoidance, an
/// RTO, regrowth, and an idle restart. `check` runs after every hook.
template <typename Check>
void drive(CongestionControl& cc, Check&& check) {
  sim::Time now = 0;
  auto ack = [&](std::uint64_t bytes, sim::Duration rtt) {
    now += 2 * kMillisecond;
    cc.on_ack(bytes, rtt, now);
    check(cc);
  };
  // Slow start at a 10 ms RTT that drifts up as the queue builds (gives
  // delay-based modules a real signal).
  for (int i = 0; i < 200; ++i) {
    ack(kMss, (10 + i / 20) * kMillisecond);
  }
  // Fast retransmit + paired recovery episode, with recovery ACKs.
  cc.on_loss(LossKind::kFastRetransmit, cc.cwnd_bytes(), now);
  check(cc);
  cc.enter_recovery(now);
  check(cc);
  for (int i = 0; i < 8; ++i) ack(kMss, 12 * kMillisecond);
  cc.exit_recovery(now);
  check(cc);
  // Congestion avoidance.
  for (int i = 0; i < 100; ++i) ack(kMss, 11 * kMillisecond);
  // Retransmission timeout, then regrowth.
  now += kSecond;
  cc.on_loss(LossKind::kTimeout, cc.cwnd_bytes(), now);
  check(cc);
  for (int i = 0; i < 100; ++i) ack(kMss, 10 * kMillisecond);
  // Idle restart.
  now += 10 * kSecond;
  cc.after_idle(10 * kSecond, now);
  check(cc);
  for (int i = 0; i < 20; ++i) ack(kMss, 10 * kMillisecond);
}

TEST_P(CcConformanceTest, CwndNeverBelowOneMss) {
  auto cc = make();
  drive(*cc, [](const CongestionControl& c) {
    EXPECT_GE(c.cwnd_bytes(), kMss);
    // Modules that maintain a slow-start threshold must keep it at the
    // RFC 5681 floor of 2 MSS. A constant 0 is the "no ssthresh" sentinel
    // (BBR-style modules have no loss threshold) and is exempt.
    if (c.ssthresh_bytes() != 0) {
      EXPECT_GE(c.ssthresh_bytes(), 2ull * kMss);
    }
  });
}

TEST_P(CcConformanceTest, LossNeverRaisesSsthreshAboveWindow) {
  auto cc = make();
  sim::Time now = 0;
  // Repeated loss events at several operating points: ssthresh after each
  // must not exceed the larger of the pre-loss window and pre-loss
  // ssthresh (a loss signal can only hold or shrink the safe region).
  for (int episode = 0; episode < 4; ++episode) {
    for (int i = 0; i < 50; ++i) {
      now += 2 * kMillisecond;
      cc->on_ack(kMss, 10 * kMillisecond, now);
    }
    const std::uint64_t pre_cwnd = cc->cwnd_bytes();
    const std::uint64_t pre_ssthresh = cc->ssthresh_bytes();
    const LossKind kind =
        episode % 2 == 0 ? LossKind::kFastRetransmit : LossKind::kTimeout;
    cc->on_loss(kind, pre_cwnd, now);
    EXPECT_LE(cc->ssthresh_bytes(), std::max(pre_cwnd, pre_ssthresh))
        << "episode " << episode;
    if (kind == LossKind::kFastRetransmit) {
      cc->enter_recovery(now);
      cc->exit_recovery(now);
    }
  }
}

TEST_P(CcConformanceTest, RecoveryExitNeverInflatesWindow) {
  auto cc = make();
  sim::Time now = 0;
  for (int i = 0; i < 120; ++i) {
    now += 2 * kMillisecond;
    cc->on_ack(kMss, 10 * kMillisecond, now);
  }
  // Strictly paired entry/exit, no ACKs in between: exit must land at or
  // below the pre-episode window.
  for (int episode = 0; episode < 3; ++episode) {
    const std::uint64_t pre = cc->cwnd_bytes();
    cc->on_loss(LossKind::kFastRetransmit, pre, now);
    cc->enter_recovery(now);
    cc->exit_recovery(now);
    EXPECT_LE(cc->cwnd_bytes(), pre) << "episode " << episode;
    EXPECT_GE(cc->cwnd_bytes(), kMss);
    now += 50 * kMillisecond;
  }
}

TEST_P(CcConformanceTest, AfterIdleNeverGrowsWindow) {
  auto cc = make();
  sim::Time now = 0;
  for (int i = 0; i < 200; ++i) {
    now += 2 * kMillisecond;
    cc->on_ack(kMss, 10 * kMillisecond, now);
  }
  const std::uint64_t pre = cc->cwnd_bytes();
  now += 30 * kSecond;
  cc->after_idle(30 * kSecond, now);
  EXPECT_LE(cc->cwnd_bytes(), pre);
  EXPECT_GE(cc->cwnd_bytes(), kMss);
  // The module must keep working after the restart.
  for (int i = 0; i < 50; ++i) {
    now += 2 * kMillisecond;
    cc->on_ack(kMss, 10 * kMillisecond, now);
    EXPECT_GE(cc->cwnd_bytes(), kMss);
  }
}

TEST_P(CcConformanceTest, HooksDoNotAllocate) {
  // Construction may allocate (modules preallocate buffers there); the
  // hooks themselves must not — the TCP steady-state path calls them per
  // ACK and BM_TcpSteadyStateAllocs pins that path at zero allocations.
  auto cc = make();
  AllocProbe probe;
  drive(*cc, [](const CongestionControl&) {});
  EXPECT_EQ(probe.count(), 0u) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredModules, CcConformanceTest,
    ::testing::ValuesIn(congestion_control_registry()),
    [](const ::testing::TestParamInfo<CongestionControlInfo>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace ccsig::tcp

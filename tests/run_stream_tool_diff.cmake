# End-to-end byte-identity check for ccsig_analyze --stream: runs the tool
# on every committed example capture in batch mode and in streaming mode —
# both input backends (--stream buffered reads and --mmap zero-copy) at
# jobs 1 and 4 — and requires bit-identical stdout and equal exit codes.
# Registered as the `stream_tool_byte_diff` ctest by tests/CMakeLists.txt.
#
# Invoked as:
#   cmake -DANALYZE_BIN=<ccsig_analyze> -DCAPTURE_DIR=<repo>/examples/captures
#         -DOUT_DIR=<build>/stream_tool_diff -P run_stream_tool_diff.cmake

foreach(var ANALYZE_BIN CAPTURE_DIR OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

file(GLOB captures ${CAPTURE_DIR}/*.pcap)
if(NOT captures)
  message(FATAL_ERROR "no example captures found in ${CAPTURE_DIR}")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})

foreach(capture ${captures})
  get_filename_component(name ${capture} NAME_WE)
  set(batch_out ${OUT_DIR}/${name}.batch.txt)
  execute_process(
    COMMAND ${ANALYZE_BIN} ${capture}
    OUTPUT_FILE ${batch_out}
    RESULT_VARIABLE batch_rc)

  foreach(backend --stream --mmap)
    string(REPLACE "--" "" tag ${backend})
    foreach(jobs 1 4)
      set(stream_out ${OUT_DIR}/${name}.${tag}.j${jobs}.txt)
      execute_process(
        COMMAND ${ANALYZE_BIN} ${capture} ${backend} --jobs ${jobs}
        OUTPUT_FILE ${stream_out}
        RESULT_VARIABLE stream_rc)
      if(NOT stream_rc EQUAL batch_rc)
        message(FATAL_ERROR
          "${name}: ${backend} --jobs ${jobs} exited ${stream_rc}, "
          "batch exited ${batch_rc}")
      endif()
      execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files ${batch_out} ${stream_out}
        RESULT_VARIABLE diff_rc)
      if(NOT diff_rc EQUAL 0)
        message(FATAL_ERROR
          "${name}: ${backend} --jobs ${jobs} output differs from batch "
          "(${batch_out} vs ${stream_out})")
      endif()
    endforeach()
  endforeach()
  message(STATUS
    "[stream-diff] ${name}: batch == stream == mmap at jobs 1 and 4")
endforeach()

#include "runtime/supervised.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ccsig::runtime {
namespace {

std::vector<int> iota_items(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  return v;
}

FaultSpec spec_with(double throw_rate, double permanent_rate = 0) {
  FaultSpec s;
  s.throw_rate = throw_rate;
  s.permanent_rate = permanent_rate;
  return s;
}

TEST(Supervised, AllSucceedInOrder) {
  const auto items = iota_items(16);
  for (int jobs : {1, 4}) {
    SupervisedOptions opt;
    opt.jobs = jobs;
    const auto results =
        parallel_map_supervised(items, [](const int& x) { return x * x; }, opt);
    ASSERT_EQ(results.size(), 16u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok());
      EXPECT_EQ(results[i].value(), static_cast<int>(i * i));
      EXPECT_EQ(results[i].attempts(), 1);
    }
  }
}

TEST(Supervised, TransientFaultsRecoveredByRetry) {
  const auto items = iota_items(12);
  const FaultPlan faults(7, spec_with(1.0));
  SupervisedOptions opt;
  opt.jobs = 2;
  opt.retry.max_attempts = 2;
  opt.faults = &faults;
  const auto results =
      parallel_map_supervised(items, [](const int& x) { return x + 1; }, opt);
  ASSERT_EQ(results.size(), 12u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].error().to_string();
    EXPECT_EQ(results[i].value(), static_cast<int>(i) + 1);
    // Every first attempt faulted; every job needed exactly one retry.
    EXPECT_EQ(results[i].attempts(), 2);
  }
}

TEST(Supervised, RetriedResultsIdenticalToFaultFree) {
  const auto items = iota_items(20);
  auto fn = [](const int& x) { return 31 * x + 7; };
  const auto clean = parallel_map_supervised(items, fn);

  const FaultPlan faults(99, spec_with(0.7));
  SupervisedOptions opt;
  opt.retry.max_attempts = 3;
  opt.faults = &faults;
  for (int jobs : {1, 3}) {
    opt.jobs = jobs;
    const auto faulty = parallel_map_supervised(items, fn, opt);
    ASSERT_EQ(faulty.size(), clean.size());
    for (std::size_t i = 0; i < clean.size(); ++i) {
      ASSERT_TRUE(faulty[i].ok());
      EXPECT_EQ(faulty[i].value(), clean[i].value());
    }
  }
}

TEST(Supervised, PermanentFailuresReportedStructured) {
  const auto items = iota_items(8);
  SupervisedOptions opt;
  opt.jobs = 2;
  opt.retry.max_attempts = 3;  // retries must NOT be spent on permanents
  opt.seed_of = [](std::size_t i) { return 1000 + i; };
  const auto results = parallel_map_supervised(
      items,
      [](const int& x) -> int {
        if (x % 2 == 1) throw std::runtime_error("odd job rejected");
        return x;
      },
      opt);
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(results[i].ok());
      continue;
    }
    ASSERT_FALSE(results[i].ok());
    const JobError& err = results[i].error();
    EXPECT_EQ(err.index, i);
    EXPECT_EQ(err.seed, 1000 + i);
    EXPECT_EQ(err.attempts, 1);  // permanent: no retry attempted
    EXPECT_EQ(err.kind, JobErrorKind::kPermanent);
    EXPECT_EQ(err.message, "odd job rejected");
    EXPECT_NE(err.to_string().find("permanent"), std::string::npos);
  }
}

TEST(Supervised, TransientExhaustionReportsAttemptCount) {
  const std::vector<int> items = {0};
  SupervisedOptions opt;
  opt.jobs = 1;
  opt.retry.max_attempts = 3;
  const auto results = parallel_map_supervised(
      items, [](const int&) -> int { throw TransientError("flaky forever"); },
      opt);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].error().kind, JobErrorKind::kTransient);
  EXPECT_EQ(results[0].error().attempts, 3);
}

TEST(RetryPolicy, BackoffDoublesAndCaps) {
  RetryPolicy p;
  p.backoff = std::chrono::milliseconds(10);
  p.max_backoff = std::chrono::milliseconds(35);
  EXPECT_EQ(p.backoff_for(1).count(), 10);
  EXPECT_EQ(p.backoff_for(2).count(), 20);
  EXPECT_EQ(p.backoff_for(3).count(), 35);  // capped, not 40
  EXPECT_EQ(p.backoff_for(9).count(), 35);
  RetryPolicy off;
  EXPECT_EQ(off.backoff_for(5).count(), 0);
}

TEST(RetryPolicy, DefaultClassifierKnowsTransientTypes) {
  const RetryPolicy p;
  EXPECT_TRUE(p.classify_transient(TransientError("x")));
  EXPECT_TRUE(p.classify_transient(std::ios_base::failure("y")));
  EXPECT_FALSE(p.classify_transient(std::runtime_error("z")));
  RetryPolicy custom;
  custom.is_transient = [](const std::exception&) { return true; };
  EXPECT_TRUE(custom.classify_transient(std::runtime_error("z")));
}

TEST(Supervised, SoftDeadlineFlagsSlowJobWithoutAbandoning) {
  const std::vector<int> items = {0, 1};
  SupervisedOptions opt;
  opt.jobs = 1;
  opt.soft_deadline = std::chrono::milliseconds(5);
  const auto results = parallel_map_supervised(
      items,
      [](const int& x) {
        if (x == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
        }
        return x;
      },
      opt);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok());  // completed, only flagged
  EXPECT_TRUE(results[0].deadline_exceeded);
  ASSERT_TRUE(results[1].ok());
  EXPECT_FALSE(results[1].deadline_exceeded);
}

TEST(Supervised, AbandonOnDeadlineReportsTimeoutAndReturnsPromptly) {
  const std::vector<int> items = {0, 1, 2, 3};
  SupervisedOptions opt;
  opt.jobs = 2;
  opt.soft_deadline = std::chrono::milliseconds(40);
  opt.abandon_on_deadline = true;
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = parallel_map_supervised(
      items,
      [](const int& x) {
        if (x == 1) {
          // Far past the deadline: the watchdog must abandon this slot.
          std::this_thread::sleep_for(std::chrono::seconds(2));
        }
        return x * 10;
      },
      opt);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_EQ(results.size(), 4u);
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].error().kind, JobErrorKind::kTimeout);
  EXPECT_EQ(results[1].error().index, 1u);
  for (std::size_t i : {0u, 2u, 3u}) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].value(), static_cast<int>(i) * 10);
  }
  // The stuck job sleeps 2 s; returning well under that proves abandonment.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1500);
}

TEST(Supervised, AbandonedSlotRetryDoesNotSettleTwice) {
  // Regression: a job that stalls past the deadline, then throws a
  // transient error with retries left, must NOT clobber the watchdog's
  // abandonment. Previously on_attempt_start reset the slot to kRunning,
  // the slot settled twice, the call returned while workers were still
  // running, and a late completion wrote into the moved-from results
  // vector (UB); the kTimeout error could also be silently overwritten.
  static std::atomic<int> slow_attempts{0};
  slow_attempts = 0;
  const std::vector<int> items = {0, 1, 2, 3};
  SupervisedOptions opt;
  opt.jobs = 2;
  opt.retry.max_attempts = 4;
  opt.soft_deadline = std::chrono::milliseconds(30);
  opt.abandon_on_deadline = true;
  const auto results = parallel_map_supervised(
      items,
      [](const int& x) -> int {
        if (x == 1) {
          ++slow_attempts;
          std::this_thread::sleep_for(std::chrono::milliseconds(150));
          throw TransientError("slow and flaky");
        }
        return x * 3;
      },
      opt);
  ASSERT_EQ(results.size(), 4u);
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].error().kind, JobErrorKind::kTimeout);
  for (std::size_t i : {0u, 2u, 3u}) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].value(), static_cast<int>(i) * 3);
  }
  // The orphaned worker observes the abandonment when its first attempt
  // fails and bails out instead of burning the remaining retries.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_LT(slow_attempts.load(), opt.retry.max_attempts);
}

TEST(Supervised, FaultOutcomesIdenticalAcrossJobCounts) {
  const auto items = iota_items(24);
  const FaultPlan faults(1234, spec_with(0.3, 0.2));
  auto run = [&](int jobs) {
    SupervisedOptions opt;
    opt.jobs = jobs;
    opt.retry.max_attempts = 2;
    opt.faults = &faults;
    return parallel_map_supervised(items, [](const int& x) { return x; }, opt);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].ok(), parallel[i].ok()) << "slot " << i;
    if (serial[i].ok()) {
      EXPECT_EQ(serial[i].value(), parallel[i].value());
      EXPECT_EQ(serial[i].attempts(), parallel[i].attempts());
    } else {
      EXPECT_EQ(serial[i].error().kind, parallel[i].error().kind);
      EXPECT_EQ(serial[i].error().attempts, parallel[i].error().attempts);
    }
  }
}

TEST(Supervised, ProgressTicksOncePerItem) {
  const auto items = iota_items(10);
  std::size_t calls = 0;
  std::size_t last_done = 0;
  ProgressCounter progress(items.size(),
                           [&](std::size_t done, std::size_t total) {
                             ++calls;
                             last_done = done;
                             EXPECT_EQ(total, 10u);
                           });
  SupervisedOptions opt;
  opt.jobs = 3;
  parallel_map_supervised(items, [](const int& x) { return x; }, opt,
                          &progress);
  EXPECT_EQ(calls, 10u);
  EXPECT_EQ(last_done, 10u);
}

}  // namespace
}  // namespace ccsig::runtime

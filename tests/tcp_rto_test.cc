#include "tcp/rto.h"

#include <gtest/gtest.h>

namespace ccsig::tcp {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(Rto, InitialValueBeforeSamples) {
  RtoEstimator rto;
  EXPECT_FALSE(rto.has_sample());
  EXPECT_EQ(rto.rto(), 1 * kSecond);
}

TEST(Rto, FirstSampleInitializesPerRfc) {
  RtoEstimator rto;
  rto.on_measurement(100 * kMillisecond);
  EXPECT_TRUE(rto.has_sample());
  EXPECT_EQ(rto.srtt(), 100 * kMillisecond);
  EXPECT_EQ(rto.rttvar(), 50 * kMillisecond);
  // RTO = SRTT + 4*RTTVAR = 300 ms.
  EXPECT_EQ(rto.rto(), 300 * kMillisecond);
}

TEST(Rto, SmoothingConvergesToStableRtt) {
  RtoEstimator rto;
  for (int i = 0; i < 100; ++i) rto.on_measurement(80 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(rto.srtt()), 80.0 * kMillisecond,
              1.0 * kMillisecond);
  // With zero variance, RTO clamps to the 200 ms floor.
  EXPECT_EQ(rto.rto(), 200 * kMillisecond);
}

TEST(Rto, MinimumFloor) {
  RtoEstimator rto;
  for (int i = 0; i < 50; ++i) rto.on_measurement(1 * kMillisecond);
  EXPECT_EQ(rto.rto(), 200 * kMillisecond);
}

TEST(Rto, CustomFloor) {
  RtoEstimator::Config cfg;
  cfg.min_rto = 50 * kMillisecond;
  RtoEstimator rto(cfg);
  for (int i = 0; i < 50; ++i) rto.on_measurement(1 * kMillisecond);
  EXPECT_EQ(rto.rto(), 50 * kMillisecond);
}

TEST(Rto, BackoffDoublesAndCaps) {
  RtoEstimator rto;
  rto.on_measurement(100 * kMillisecond);
  const sim::Duration base = rto.rto();
  rto.on_timeout();
  EXPECT_EQ(rto.rto(), 2 * base);
  rto.on_timeout();
  EXPECT_EQ(rto.rto(), 4 * base);
  for (int i = 0; i < 20; ++i) rto.on_timeout();
  EXPECT_EQ(rto.rto(), 60 * kSecond);  // max clamp
}

TEST(Rto, MeasurementResetsBackoff) {
  RtoEstimator rto;
  rto.on_measurement(100 * kMillisecond);
  rto.on_timeout();
  rto.on_timeout();
  rto.on_measurement(100 * kMillisecond);
  EXPECT_LE(rto.rto(), 350 * kMillisecond);
}

TEST(Rto, VarianceTracksJitter) {
  RtoEstimator rto;
  for (int i = 0; i < 200; ++i) {
    rto.on_measurement((i % 2 == 0 ? 60 : 140) * kMillisecond);
  }
  // Alternating 60/140: SRTT near 100, RTTVAR substantial -> RTO well
  // above the floor.
  EXPECT_GT(rto.rto(), 200 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(rto.srtt()), 100.0 * kMillisecond,
              15.0 * kMillisecond);
}

TEST(Rto, NegativeSampleTreatedAsZero) {
  RtoEstimator rto;
  rto.on_measurement(-5);
  EXPECT_EQ(rto.srtt(), 0);
  EXPECT_EQ(rto.rto(), 200 * kMillisecond);
}

}  // namespace
}  // namespace ccsig::tcp

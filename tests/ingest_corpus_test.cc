// Corpus tests: deterministically damaged pcap captures and campaign CSVs
// must surface as structured ParseErrors (file, offset, reason) — never as
// crashes, silent misparses, or fabricated verdicts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/from_pcap.h"
#include "core/analyzer.h"
#include "mlab/dispute2014.h"
#include "mlab/tslp2017.h"
#include "pcap/capture.h"
#include "pcap/cursor.h"
#include "pcap/pcap_file.h"
#include "runtime/fault_injection.h"
#include "runtime/parse_error.h"
#include "stream/ingest.h"
#include "stream/stream.h"
#include "test_helpers.h"
#include "testbed/sweep.h"

namespace ccsig {
namespace {

namespace fs = std::filesystem;

class CorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("ccsig_corpus_" + std::to_string(counter_++)))
               .string();
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string file(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }

  /// Writes a healthy capture: a real buffer-limited transfer whose
  /// slow-start overshoot guarantees a retransmission, so the flow
  /// classifies end to end.
  std::string write_capture() const {
    const std::string path = file("healthy.pcap");
    testutil::TwoNodePath net(testutil::basic_link(10e6, 10, 25));
    pcap::PcapCaptureTap tap(path);
    net.server->add_tap(&tap);
    const auto result = testutil::run_transfer(net, 300'000);
    net.server->remove_tap(&tap);
    tap.flush();
    EXPECT_TRUE(result.completed);
    return path;
  }

  static int counter_;
  std::string dir_;
};

int CorpusTest::counter_ = 0;

TEST_F(CorpusTest, HealthyCaptureReadsCleanAndClassifies) {
  const std::string path = write_capture();
  const auto raw = pcap::read_all_checked(path);
  EXPECT_TRUE(raw.ok());
  EXPECT_GT(raw.records.size(), 100u);

  const FlowAnalyzer analyzer;
  const auto analysis = analyzer.analyze_pcap_checked(path);
  EXPECT_TRUE(analysis.ok());
  ASSERT_EQ(analysis.reports.size(), 1u);
  EXPECT_TRUE(analysis.reports[0].classification.has_value());
  EXPECT_NE(analysis.reports[0].verdict(), Verdict::kInsufficientData);
}

TEST_F(CorpusTest, TruncatedFileHeaderIsStructuredError) {
  const std::string path = write_capture();
  runtime::truncate_file(path, 10);  // mid file header
  const auto raw = pcap::read_all_checked(path);
  ASSERT_FALSE(raw.ok());
  EXPECT_TRUE(raw.records.empty());
  EXPECT_EQ(raw.error->file, path);
  EXPECT_FALSE(raw.error->reason.empty());
  // The throwing API reports the same thing as an exception that is still
  // a std::runtime_error for legacy catch sites.
  EXPECT_THROW(pcap::read_all(path), runtime::ParseException);
  EXPECT_THROW(pcap::read_all(path), std::runtime_error);
}

TEST_F(CorpusTest, BadMagicIsStructuredError) {
  const std::string path = file("junk.pcap");
  {
    std::ofstream out(path, std::ios::binary);
    const char junk[64] = "this is not a capture";
    out.write(junk, sizeof(junk));
  }
  const auto raw = pcap::read_all_checked(path);
  ASSERT_FALSE(raw.ok());
  EXPECT_NE(raw.error->reason.find("magic"), std::string::npos);
  EXPECT_NE(raw.error->to_string().find(path), std::string::npos);
}

TEST_F(CorpusTest, TruncatedRecordKeepsCleanPrefix) {
  const std::string path = write_capture();
  const auto whole = pcap::read_all(path);
  runtime::truncate_file(path, fs::file_size(path) - 7);
  const auto raw = pcap::read_all_checked(path);
  ASSERT_FALSE(raw.ok());
  EXPECT_EQ(raw.records.size(), whole.size() - 1);
  EXPECT_GT(raw.error->offset, 0u);

  // The analyzer sees the same prefix and still does not crash.
  const FlowAnalyzer analyzer;
  const auto analysis = analyzer.analyze_pcap_checked(path);
  EXPECT_FALSE(analysis.ok());
  EXPECT_EQ(analysis.reports.size(), 1u);
}

TEST_F(CorpusTest, MutatedPcapCorpusNeverCrashesReaders) {
  const std::string source = write_capture();
  const auto mutants =
      runtime::mutate_corpus(source, file("mutants"), /*seed=*/77,
                             /*count=*/14);
  ASSERT_EQ(mutants.size(), 14u);
  const FlowAnalyzer analyzer;
  int structured_errors = 0;
  for (const auto& mutant : mutants) {
    // Damaged captures must degrade into a clean prefix + structured
    // error. Any other exception (or a crash) fails the test.
    const auto raw = pcap::read_all_checked(mutant);
    if (!raw.ok()) {
      ++structured_errors;
      EXPECT_EQ(raw.error->file, mutant);
      EXPECT_FALSE(raw.error->reason.empty());
    }
    const auto analysis = analyzer.analyze_pcap_checked(mutant);
    EXPECT_EQ(analysis.ok(), raw.ok());
  }
  // Truncations nearly always break framing; most mutants must report
  // structured errors rather than parse silently.
  EXPECT_GE(structured_errors, 5);
}

TEST_F(CorpusTest, StreamingMatchesBatchOnHealthyMultiFlowCapture) {
  // Seed 3 produces a multi-flow capture (asserted below so a generator
  // change can't silently weaken the test).
  const std::string path = file("multi.pcap");
  const int flows = testutil::write_random_capture(/*seed=*/3, path);
  EXPECT_GT(flows, 1);

  const FlowAnalyzer analyzer;
  const auto batch = analyzer.analyze_pcap_checked(path);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.reports.size(), static_cast<std::size_t>(flows));

  for (const unsigned jobs : {1u, 4u}) {
    stream::StreamConfig cfg;
    cfg.jobs = jobs;
    const auto streamed = stream::analyze_pcap_stream(path, analyzer, cfg);
    ASSERT_TRUE(streamed.ok());
    ASSERT_EQ(streamed.reports.size(), batch.reports.size());
    for (std::size_t i = 0; i < batch.reports.size(); ++i) {
      EXPECT_EQ(FlowAnalyzer::render(streamed.reports[i]),
                FlowAnalyzer::render(batch.reports[i]));
    }
  }
}

TEST_F(CorpusTest, NewCcVariantCapturesIngestIdenticallyInBatchAndStream) {
  // One capture per PR-10 congestion-control variant. The transport is
  // CC-agnostic, but each variant shapes different packet timing (Vegas
  // never fills the buffer, Westwood+ rides through the random drops,
  // HyStart exits slow start early) — so each one goes through the full
  // reader + analyzer in batch mode and through the single-pass streaming
  // engine at two worker counts, and every rendered report must match.
  for (const char* cc : {"vegas", "westwood", "cubic_hystart"}) {
    const std::string path = file(std::string(cc) + ".pcap");
    // A pinch of random loss guarantees retransmission events in the
    // capture even for the variants that avoid buffer overflow.
    testutil::TwoNodePath net(testutil::basic_link(10e6, 10, 25, 0.002));
    pcap::PcapCaptureTap tap(path);
    net.server->add_tap(&tap);
    const auto result = testutil::run_transfer(net, 300'000, cc);
    net.server->remove_tap(&tap);
    tap.flush();
    ASSERT_TRUE(result.completed) << cc;

    const FlowAnalyzer analyzer;
    const auto batch = analyzer.analyze_pcap_checked(path);
    ASSERT_TRUE(batch.ok()) << cc;
    ASSERT_EQ(batch.reports.size(), 1u) << cc;

    for (const unsigned jobs : {1u, 4u}) {
      stream::StreamConfig cfg;
      cfg.jobs = jobs;
      const auto streamed = stream::analyze_pcap_stream(path, analyzer, cfg);
      ASSERT_TRUE(streamed.ok()) << cc;
      ASSERT_EQ(streamed.reports.size(), 1u) << cc;
      EXPECT_EQ(FlowAnalyzer::render(streamed.reports[0]),
                FlowAnalyzer::render(batch.reports[0]))
          << cc << " jobs=" << jobs;
    }
  }
}

TEST_F(CorpusTest, MutatedPcapCorpusNeverCrashesStreaming) {
  // Damaged multi-flow captures through the single-pass engine: every
  // mutant must yield the same clean prefix and the same structured error
  // as the batch reader — never a crash or a divergent flow partition.
  const std::string source = file("multi_src.pcap");
  testutil::write_random_capture(/*seed=*/3, source);
  const auto mutants =
      runtime::mutate_corpus(source, file("stream_mutants"), /*seed=*/91,
                             /*count=*/14);
  ASSERT_EQ(mutants.size(), 14u);

  const FlowAnalyzer analyzer;
  int structured_errors = 0;
  for (const auto& mutant : mutants) {
    const auto batch = analyzer.analyze_pcap_checked(mutant);
    for (const unsigned jobs : {1u, 4u}) {
      stream::StreamConfig cfg;
      cfg.jobs = jobs;
      const auto streamed = stream::analyze_pcap_stream(mutant, analyzer, cfg);

      // Identical structured error (file, offset, reason) or none at all.
      ASSERT_EQ(streamed.ok(), batch.ok()) << mutant;
      if (!batch.ok()) {
        EXPECT_EQ(streamed.error->file, batch.error->file);
        EXPECT_EQ(streamed.error->offset, batch.error->offset);
        EXPECT_EQ(streamed.error->reason, batch.error->reason);
      }

      // The flow partition of the clean prefix is order-independent, so it
      // must match exactly even when a flipped byte makes timestamps go
      // backwards. (Feature values are NOT compared here: on non-monotone
      // timestamps the two paths may legitimately diverge — the documented
      // divergence in flow_state.h — and both report the damage as
      // kNonMonotone insufficiency in practice.)
      ASSERT_EQ(streamed.reports.size(), batch.reports.size()) << mutant;
      for (std::size_t i = 0; i < batch.reports.size(); ++i) {
        EXPECT_EQ(streamed.reports[i].data_key, batch.reports[i].data_key);
      }
    }
    structured_errors += batch.ok() ? 0 : 1;
  }
  EXPECT_GE(structured_errors, 5);
}

// Walks one cursor to exhaustion, appending every record to `records` (a
// flattened copy: timestamp, orig_len, then the body bytes). Returns the
// ParseError that stopped the walk, if any.
std::optional<runtime::ParseError> drain_cursor(
    const std::string& path, pcap::CursorMode mode,
    std::vector<std::uint64_t>* records) {
  try {
    pcap::PcapCursor cursor(path, mode);
    while (const auto rec = cursor.next()) {
      records->push_back(static_cast<std::uint64_t>(rec->timestamp));
      records->push_back(rec->orig_len);
      for (const std::uint8_t b : rec->data) records->push_back(b);
    }
  } catch (const runtime::ParseException& e) {
    return e.error();
  }
  return std::nullopt;
}

TEST_F(CorpusTest, MmapAndStreamedCursorsAreByteAndErrorIdentical) {
  // The tentpole differential: on the healthy capture and on every mutant,
  // the mmap backend must yield the exact same RecordView sequence (every
  // byte of every body) and, on damage, the exact same structured error
  // (file, offset, reason) as the buffered-read backend. This is what lets
  // every other test in the suite speak for both backends at once.
  const std::string source = write_capture();
  std::vector<std::string> inputs{source};
  const auto mutants = runtime::mutate_corpus(
      source, file("cursor_mutants"), /*seed=*/123, /*count=*/14);
  inputs.insert(inputs.end(), mutants.begin(), mutants.end());

  int damaged = 0;
  for (const std::string& input : inputs) {
    std::vector<std::uint64_t> streamed_bytes, mmapped_bytes;
    const auto streamed_err =
        drain_cursor(input, pcap::CursorMode::kStream, &streamed_bytes);
    const auto mmapped_err =
        drain_cursor(input, pcap::CursorMode::kMmap, &mmapped_bytes);

    ASSERT_EQ(streamed_err.has_value(), mmapped_err.has_value()) << input;
    if (streamed_err) {
      ++damaged;
      EXPECT_EQ(streamed_err->file, mmapped_err->file) << input;
      EXPECT_EQ(streamed_err->offset, mmapped_err->offset) << input;
      EXPECT_EQ(streamed_err->reason, mmapped_err->reason) << input;
    }
    // The clean prefix read before any damage must match byte for byte.
    EXPECT_EQ(streamed_bytes, mmapped_bytes) << input;

    // kAuto resolves to one of the two backends, so it must match too.
    std::vector<std::uint64_t> auto_bytes;
    const auto auto_err =
        drain_cursor(input, pcap::CursorMode::kAuto, &auto_bytes);
    EXPECT_EQ(auto_err.has_value(), streamed_err.has_value()) << input;
    EXPECT_EQ(auto_bytes, streamed_bytes) << input;
  }
  EXPECT_GE(damaged, 5);
}

TEST_F(CorpusTest, BatchedIngestMatchesRecordAtATimeDecoding) {
  // BatchedIngest must be a pure batching of the cursor+decode loop: same
  // decoded records in the same order, same clean prefix, same error.
  const std::string source = file("batched_src.pcap");
  testutil::write_random_capture(/*seed=*/3, source);
  std::vector<std::string> inputs{source};
  const auto mutants = runtime::mutate_corpus(
      source, file("batched_mutants"), /*seed=*/29, /*count=*/8);
  inputs.insert(inputs.end(), mutants.begin(), mutants.end());

  for (const std::string& input : inputs) {
    // Reference: the PR 5 one-record-at-a-time loop.
    std::vector<stream::RoutedRecord> want;
    std::optional<runtime::ParseError> want_err;
    try {
      pcap::PcapCursor cursor(input);
      while (const auto rec = cursor.next()) {
        const auto w =
            analysis::wire_record_from_frame(rec->timestamp, rec->data);
        if (w) want.push_back(stream::route_record(*w));
      }
    } catch (const runtime::ParseException& e) {
      want_err = e.error();
    }

    for (const auto mode :
         {pcap::CursorMode::kStream, pcap::CursorMode::kMmap}) {
      std::vector<stream::RoutedRecord> got;
      std::optional<runtime::ParseError> got_err;
      try {
        stream::BatchedIngest ingest(input, mode);
        // A deliberately awkward batch size to exercise partial batches.
        while (ingest.fill(got, /*max_records=*/37) > 0) {
        }
        if (ingest.error()) got_err = *ingest.error();
      } catch (const runtime::ParseException& e) {
        got_err = e.error();  // damaged file header surfaces at open
      }

      ASSERT_EQ(got_err.has_value(), want_err.has_value()) << input;
      if (want_err) {
        EXPECT_EQ(got_err->offset, want_err->offset) << input;
        EXPECT_EQ(got_err->reason, want_err->reason) << input;
      }
      ASSERT_EQ(got.size(), want.size()) << input;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].hash, want[i].hash);
        EXPECT_EQ(got[i].canonical, want[i].canonical);
        EXPECT_EQ(got[i].w.time, want[i].w.time);
        EXPECT_EQ(got[i].w.key, want[i].w.key);
      }
    }
  }
}

TEST_F(CorpusTest, SweepCsvRejectsDamagedRowsWithLineNumbers) {
  const std::string path = file("sweep.csv");
  testbed::SweepSample s;
  s.norm_diff = 0.5;
  s.scenario = 1;
  testbed::save_samples_csv(path, {s});

  // Append a row whose number carries trailing garbage — the old
  // `stream >>` loader silently read "12abc" as 12.
  {
    std::ofstream out(path, std::ios::app);
    out << "12abc,0,0,0,0,0,0,1,0,0,0,0\n";
  }
  try {
    testbed::load_samples_csv(path);
    FAIL() << "expected ParseException";
  } catch (const runtime::ParseException& e) {
    EXPECT_EQ(e.error().file, path);
    EXPECT_EQ(e.error().offset, 3u);  // header is line 1, good row line 2
    EXPECT_NE(e.error().reason.find("garbage"), std::string::npos);
  }
}

TEST_F(CorpusTest, SweepCsvRejectsMissingAndExtraFields) {
  const std::string path = file("fields.csv");
  testbed::save_samples_csv(path, {});
  {
    std::ofstream out(path, std::ios::app);
    out << "1,2,3\n";  // far too few fields
  }
  EXPECT_THROW(testbed::load_samples_csv(path), runtime::ParseException);

  testbed::save_samples_csv(path, {});
  {
    std::ofstream out(path, std::ios::app);
    out << "0,0,0,0,0,0,0,1,0,0,0,0,99\n";  // one extra field
  }
  EXPECT_THROW(testbed::load_samples_csv(path), runtime::ParseException);
}

TEST_F(CorpusTest, CampaignCsvLoadersSurviveMutatedCorpus) {
  // One healthy cache per campaign format.
  const std::string sweep_csv = file("sweep_src.csv");
  testbed::SweepSample sample;
  sample.norm_diff = 0.25;
  sample.cov = 0.125;
  sample.scenario = 1;
  testbed::save_samples_csv(sweep_csv, {sample, sample, sample});

  const std::string dispute_csv = file("dispute_src.csv");
  mlab::NdtObservation obs;
  obs.transit = "Cogent";
  obs.site = "LAX";
  obs.isp = "Comcast";
  obs.month = 2;
  obs.throughput_mbps = 8.5;
  mlab::save_observations_csv(dispute_csv, {obs, obs});

  const std::string tslp_csv = file("tslp_src.csv");
  mlab::TslpObservation slot;
  slot.day = 1;
  slot.hour = 20;
  slot.throughput_mbps = 12.5;
  mlab::save_tslp_csv(tslp_csv, {slot, slot});

  int outcomes = 0;
  for (const std::string& source : {sweep_csv, dispute_csv, tslp_csv}) {
    const auto mutants = runtime::mutate_corpus(
        source, file("csv_mutants"), /*seed=*/13, /*count=*/8);
    for (const auto& mutant : mutants) {
      try {
        if (source == sweep_csv) {
          testbed::load_samples_csv(mutant);
        } else if (source == dispute_csv) {
          mlab::load_observations_csv(mutant);
        } else {
          mlab::load_tslp_csv(mutant);
        }
      } catch (const runtime::ParseException& e) {
        // Structured rejection is a valid outcome; anything else escapes
        // and fails the test.
        EXPECT_EQ(e.error().file, mutant);
        EXPECT_FALSE(e.error().reason.empty());
      }
      ++outcomes;
    }
  }
  EXPECT_EQ(outcomes, 24);
}

TEST_F(CorpusTest, LoadOrRunSweepSelfHealsCorruptCache) {
  const std::string cache = file("cache.csv");
  {
    std::ofstream out(cache);
    out << "complete garbage\nnot,a,sweep\n";
  }
  testbed::SweepOptions opt;
  opt.access_rates_mbps.clear();  // empty grid: regeneration is free
  const auto got = testbed::load_or_run_sweep(cache, opt);
  EXPECT_TRUE(got.empty());
  // The corrupt cache was replaced by a well-formed fingerprinted one.
  std::string fp;
  EXPECT_NO_THROW(testbed::load_samples_csv(cache, &fp));
  EXPECT_EQ(fp, testbed::sweep_fingerprint(opt));
}

}  // namespace
}  // namespace ccsig

#include "mlab/tslp.h"
#include "mlab/tslp2017.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "sim/echo.h"
#include "sim/network.h"

namespace ccsig::mlab {
namespace {

TEST(TslpProber, MeasuresRoundTripOnCleanPath) {
  sim::Network net(1);
  sim::Node* vantage = net.add_node("vantage");
  sim::Node* router = net.add_node("router");
  sim::Link::Config link;
  link.rate_bps = 1e9;
  link.prop_delay = 9 * sim::kMillisecond;
  link.buffer_bytes = 1 << 20;
  net.connect(vantage, router, link);
  sim::EchoResponder echo(router);
  TslpProber prober(net.sim(), vantage, router, 40000);

  prober.probe();
  net.sim().run_until(sim::from_seconds(1));
  ASSERT_EQ(prober.samples().size(), 1u);
  EXPECT_NEAR(sim::to_millis(prober.samples()[0].rtt), 18.0, 0.5);
  EXPECT_EQ(prober.min_rtt(), prober.samples()[0].rtt);
}

TEST(TslpProber, ScheduledSeriesAndMinRtt) {
  sim::Network net(2);
  sim::Node* vantage = net.add_node("vantage");
  sim::Node* router = net.add_node("router");
  sim::Link::Config link;
  link.rate_bps = 1e8;
  link.prop_delay = 5 * sim::kMillisecond;
  link.buffer_bytes = 1 << 20;
  net.connect(vantage, router, link);
  sim::EchoResponder echo(router);
  TslpProber prober(net.sim(), vantage, router, 40001);
  prober.schedule(0, sim::from_seconds(1), 100 * sim::kMillisecond);
  net.sim().run_until(sim::from_seconds(2));
  EXPECT_EQ(prober.samples().size(), 11u);
  for (const auto& s : prober.samples()) {
    EXPECT_GT(s.rtt, 0);
  }
  EXPECT_NEAR(sim::to_millis(prober.min_rtt()), 10.0, 0.5);
}

TEST(TslpProber, LostProbeStaysUnanswered) {
  sim::Network net(3);
  sim::Node* vantage = net.add_node("vantage");
  sim::Node* router = net.add_node("router");
  sim::Link::Config link;
  link.rate_bps = 1e8;
  link.loss_rate = 1.0;  // everything lost
  link.buffer_bytes = 1 << 20;
  net.connect(vantage, router, link);
  sim::EchoResponder echo(router);
  TslpProber prober(net.sim(), vantage, router, 40002);
  prober.probe();
  net.sim().run_until(sim::from_seconds(1));
  ASSERT_EQ(prober.samples().size(), 1u);
  EXPECT_EQ(prober.samples()[0].rtt, -1);
  EXPECT_EQ(prober.min_rtt(), -1);
}

TEST(TslpLabel, PaperRules) {
  TslpObservation obs;
  obs.ndt_ran = true;
  obs.has_features = true;

  obs.throughput_mbps = 10.0;
  obs.min_flow_rtt_ms = 35.0;
  EXPECT_EQ(tslp_label(obs), 0);  // external

  obs.throughput_mbps = 23.0;
  obs.min_flow_rtt_ms = 18.0;
  EXPECT_EQ(tslp_label(obs), 1);  // self

  obs.throughput_mbps = 17.0;  // gray zone
  obs.min_flow_rtt_ms = 25.0;
  EXPECT_EQ(tslp_label(obs), -1);

  obs.throughput_mbps = 10.0;  // low tput but low RTT: unlabeled
  obs.min_flow_rtt_ms = 18.0;
  EXPECT_EQ(tslp_label(obs), -1);

  obs.has_features = false;
  obs.throughput_mbps = 10.0;
  obs.min_flow_rtt_ms = 35.0;
  EXPECT_EQ(tslp_label(obs), -1);
}

TEST(TslpCsv, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ccsig_tslp_rt.csv").string();
  std::vector<TslpObservation> obs(1);
  obs[0].day = 2;
  obs[0].hour = 21;
  obs[0].minute = 30;
  obs[0].far_rtt_ms = 33.5;
  obs[0].near_rtt_ms = 16.25;
  obs[0].ndt_ran = true;
  obs[0].throughput_mbps = 4.75;
  obs[0].min_flow_rtt_ms = 34.0;
  obs[0].norm_diff = 0.08;
  obs[0].cov = 0.02;
  obs[0].has_features = true;
  obs[0].truth_external = true;
  save_tslp_csv(path, obs);
  const auto loaded = load_tslp_csv(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].day, 2);
  EXPECT_DOUBLE_EQ(loaded[0].far_rtt_ms, 33.5);
  EXPECT_DOUBLE_EQ(loaded[0].throughput_mbps, 4.75);
  EXPECT_TRUE(loaded[0].truth_external);
}

TEST(Tslp2017, OneDayCampaign) {
  Tslp2017Options opt;
  opt.days = 1;
  opt.ndt_duration = sim::from_seconds(4);
  opt.warmup = sim::from_seconds(1.5);
  opt.episode_probability = 1.0;  // force evening congestion
  opt.seed = 5;
  const auto obs = generate_tslp2017(opt);
  // 16 off-peak hourly + 8 peak hours x 4 slots = 48 slots.
  ASSERT_EQ(obs.size(), 48u);
  double clean_far = 0, busy_far = 0;
  int clean_n = 0, busy_n = 0;
  for (const auto& o : obs) {
    EXPECT_GT(o.near_rtt_ms, 0);
    if (o.truth_external) {
      busy_far += o.far_rtt_ms;
      ++busy_n;
    } else {
      clean_far += o.far_rtt_ms;
      ++clean_n;
    }
  }
  ASSERT_GT(busy_n, 0);
  ASSERT_GT(clean_n, 0);
  // Congested slots must show the TSLP latency elevation.
  EXPECT_GT(busy_far / busy_n, clean_far / clean_n + 5.0);
}

}  // namespace
}  // namespace ccsig::mlab

# Configures a second build tree with TSan, builds the observability
# concurrency tests, and runs them there. Registered as the
# `obs_tests_tsan` ctest by tests/CMakeLists.txt (only when the main build
# is unsanitized), so a plain `ctest` also proves the metrics shards, the
# window aggregator fed from the service loop, and the admin socket answer
# path are race-free under -fsanitize=thread.
#
# Invoked as:
#   cmake -DSOURCE_DIR=<repo> -DBUILD_DIR=<build>/obs-tsan
#         -P run_tsan_obs_tests.cmake

foreach(var SOURCE_DIR BUILD_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

set(tests
  obs_concurrency_test
  obs_window_test
  service_admin_test
)

message(STATUS "[obs-tsan] configuring TSan tree in ${BUILD_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DCMAKE_BUILD_TYPE=RelWithDebInfo
          -DCCSIG_ENABLE_TSAN=ON
          # The TSan tree must not recursively register the second-tree
          # sanitizer scripts.
          -DCCSIG_SANITIZED_FAULT_TESTS=OFF
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[obs-tsan] configure failed (${rc})")
endif()

include(ProcessorCount)
ProcessorCount(nproc)
if(nproc EQUAL 0)
  set(nproc 2)
endif()

message(STATUS "[obs-tsan] building ${tests}")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --parallel ${nproc}
          --target ${tests}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[obs-tsan] build failed (${rc})")
endif()

# A reported race must fail the test, not just print.
set(ENV{TSAN_OPTIONS} "halt_on_error=1:second_deadlock_stack=1")

list(JOIN tests "|" test_regex)
message(STATUS "[obs-tsan] running TSan obs tests")
execute_process(
  COMMAND ${CMAKE_CTEST_COMMAND} --test-dir ${BUILD_DIR}
          -R "^(${test_regex})$" --output-on-failure
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[obs-tsan] TSan obs tests failed (${rc})")
endif()
message(STATUS "[obs-tsan] all TSan obs tests passed")

#include "analysis/rtt_estimator.h"

#include <gtest/gtest.h>

namespace ccsig::analysis {
namespace {

using sim::kMillisecond;

FlowTrace make_flow() {
  FlowTrace flow;
  flow.data_key = sim::FlowKey{1, 2, 10, 20};
  return flow;
}

void add_data(FlowTrace& flow, sim::Time t, std::uint64_t seq,
              std::uint32_t len) {
  TraceRecord r;
  r.time = t;
  r.key = flow.data_key;
  r.seq = seq;
  r.payload_bytes = len;
  r.flags.ack = true;
  flow.data.push_back(r);
}

void add_ack(FlowTrace& flow, sim::Time t, std::uint64_t ack) {
  TraceRecord r;
  r.time = t;
  r.key = flow.data_key.reversed();
  r.seq = 1;
  r.ack = ack;
  r.flags.ack = true;
  flow.acks.push_back(r);
}

TEST(RttEstimator, ExactAckMatch) {
  FlowTrace flow = make_flow();
  add_data(flow, 0, 1, 100);
  add_ack(flow, 20 * kMillisecond, 101);
  const auto samples = extract_rtt_samples(flow);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].rtt, 20 * kMillisecond);
  EXPECT_EQ(samples[0].at, 20 * kMillisecond);
  EXPECT_EQ(samples[0].acked_seq, 101u);
}

TEST(RttEstimator, CumulativeAckSamplesNewestCoveredSegment) {
  FlowTrace flow = make_flow();
  add_data(flow, 0, 1, 100);
  add_data(flow, 5 * kMillisecond, 101, 100);
  add_ack(flow, 25 * kMillisecond, 201);  // covers both (delayed ACK)
  const auto samples = extract_rtt_samples(flow);
  ASSERT_EQ(samples.size(), 1u);
  // Sample belongs to the second segment: 25 - 5 = 20 ms.
  EXPECT_EQ(samples[0].rtt, 20 * kMillisecond);
}

TEST(RttEstimator, EachAckYieldsAtMostOneSample) {
  FlowTrace flow = make_flow();
  for (int i = 0; i < 4; ++i) {
    add_data(flow, i * kMillisecond, 1 + 100ull * static_cast<unsigned>(i),
             100);
  }
  add_ack(flow, 30 * kMillisecond, 201);
  add_ack(flow, 32 * kMillisecond, 401);
  const auto samples = extract_rtt_samples(flow);
  EXPECT_EQ(samples.size(), 2u);
}

TEST(RttEstimator, KarnExcludesRetransmittedRange) {
  FlowTrace flow = make_flow();
  add_data(flow, 0, 1, 100);
  add_data(flow, 1 * kMillisecond, 101, 100);
  add_data(flow, 50 * kMillisecond, 1, 100);  // retransmission of seq 1
  add_ack(flow, 70 * kMillisecond, 101);      // acks the ambiguous range
  add_ack(flow, 71 * kMillisecond, 201);      // acks the clean range
  const auto samples = extract_rtt_samples(flow);
  ASSERT_EQ(samples.size(), 1u);
  // Only the never-retransmitted segment may produce a sample.
  EXPECT_EQ(samples[0].acked_seq, 201u);
  EXPECT_EQ(samples[0].rtt, 70 * kMillisecond);
}

TEST(RttEstimator, DuplicateAcksProduceNoSamples) {
  FlowTrace flow = make_flow();
  add_data(flow, 0, 1, 100);
  add_ack(flow, 20 * kMillisecond, 101);
  add_ack(flow, 21 * kMillisecond, 101);  // dup
  add_ack(flow, 22 * kMillisecond, 101);  // dup
  const auto samples = extract_rtt_samples(flow);
  EXPECT_EQ(samples.size(), 1u);
}

TEST(RttEstimator, CutoffLimitsWindow) {
  FlowTrace flow = make_flow();
  add_data(flow, 0, 1, 100);
  add_data(flow, 1 * kMillisecond, 101, 100);
  add_ack(flow, 20 * kMillisecond, 101);
  add_ack(flow, 40 * kMillisecond, 201);
  const auto all = extract_rtt_samples(flow);
  EXPECT_EQ(all.size(), 2u);
  const auto early = extract_rtt_samples(flow, 30 * kMillisecond);
  ASSERT_EQ(early.size(), 1u);
  EXPECT_EQ(early[0].rtt, 20 * kMillisecond);
}

TEST(RttEstimator, PureControlPacketsIgnored) {
  FlowTrace flow = make_flow();
  TraceRecord syn;
  syn.time = 0;
  syn.key = flow.data_key;
  syn.seq = 0;
  syn.flags.syn = true;
  flow.data.push_back(syn);
  add_data(flow, 10 * kMillisecond, 1, 100);
  add_ack(flow, 30 * kMillisecond, 101);
  const auto samples = extract_rtt_samples(flow);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].rtt, 20 * kMillisecond);
}

TEST(RttEstimator, SamplesAreTimeOrdered) {
  FlowTrace flow = make_flow();
  for (unsigned i = 0; i < 20; ++i) {
    add_data(flow, i * kMillisecond, 1 + 100ull * i, 100);
    add_ack(flow, (i + 15) * kMillisecond, 101 + 100ull * i);
  }
  const auto samples = extract_rtt_samples(flow);
  ASSERT_GT(samples.size(), 1u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].at, samples[i - 1].at);
  }
}

TEST(RttEstimator, EmptyFlowNoSamples) {
  const FlowTrace flow = make_flow();
  EXPECT_TRUE(extract_rtt_samples(flow).empty());
}

}  // namespace
}  // namespace ccsig::analysis

#include "sim/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccsig::sim {
namespace {

struct LinkFixture {
  Simulator sim;
  std::vector<std::pair<Time, Packet>> delivered;

  Link make(Link::Config cfg, std::uint64_t seed = 1) {
    Link link(sim, std::move(cfg), Rng(seed));
    return link;
  }
};

Packet payload_packet(std::uint32_t bytes, std::uint64_t id = 0) {
  Packet p;
  p.payload_bytes = bytes;
  p.id = id;
  return p;
}

TEST(BufferBytesFor, ConvertsMillisecondsAtRate) {
  // 100 ms at 20 Mbps = 20e6/8 * 0.1 = 250000 bytes.
  EXPECT_EQ(buffer_bytes_for(20e6, 100.0), 250000u);
  EXPECT_EQ(buffer_bytes_for(1e9, 50.0), 6250000u);
  EXPECT_EQ(buffer_bytes_for(10e6, 0.0), 0u);
}

TEST(Link, DeliversAtConfiguredRate) {
  Simulator sim;
  Link::Config cfg;
  cfg.rate_bps = 8e6;  // 1 byte per microsecond
  cfg.prop_delay = 0;
  cfg.buffer_bytes = 1 << 20;
  cfg.burst_bytes = 0;  // pure rate shaping
  Link link(sim, cfg, Rng(1));
  std::vector<Time> times;
  link.set_receiver([&](const Packet&) { times.push_back(sim.now()); });
  // 10 packets of 1000 payload bytes = 1040 wire bytes each.
  for (int i = 0; i < 10; ++i) link.send(payload_packet(1000));
  sim.run();
  ASSERT_EQ(times.size(), 10u);
  // Sustained spacing must match serialization at 1 byte/us = 1040 us.
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(times[i] - times[i - 1]),
                1040.0 * kMicrosecond, 2.0 * kMicrosecond);
  }
}

TEST(Link, BurstPassesInstantly) {
  Simulator sim;
  Link::Config cfg;
  cfg.rate_bps = 1e6;
  cfg.burst_bytes = 10000;  // enough for ~9 packets at once
  cfg.buffer_bytes = 1 << 20;
  Link link(sim, cfg, Rng(1));
  std::vector<Time> times;
  link.set_receiver([&](const Packet&) { times.push_back(sim.now()); });
  for (int i = 0; i < 5; ++i) link.send(payload_packet(1000));
  sim.run();
  ASSERT_EQ(times.size(), 5u);
  // All fit in the initial token bucket -> delivered at t=0.
  for (Time t : times) EXPECT_EQ(t, 0);
}

TEST(Link, PropagationDelayAdds) {
  Simulator sim;
  Link::Config cfg;
  cfg.rate_bps = 1e9;
  cfg.prop_delay = 20 * kMillisecond;
  cfg.buffer_bytes = 1 << 20;
  Link link(sim, cfg, Rng(1));
  Time delivered_at = -1;
  link.set_receiver([&](const Packet&) { delivered_at = sim.now(); });
  link.send(payload_packet(100));
  sim.run();
  EXPECT_GE(delivered_at, 20 * kMillisecond);
  EXPECT_LT(delivered_at, 21 * kMillisecond);
}

TEST(Link, JitterBoundedAndFifo) {
  Simulator sim;
  Link::Config cfg;
  cfg.rate_bps = 1e8;
  cfg.prop_delay = 10 * kMillisecond;
  cfg.jitter = 2 * kMillisecond;
  cfg.buffer_bytes = 1 << 22;
  Link link(sim, cfg, Rng(7));
  std::vector<std::pair<Time, std::uint64_t>> deliveries;
  link.set_receiver([&](const Packet& p) {
    deliveries.emplace_back(sim.now(), p.id);
  });
  for (std::uint64_t i = 0; i < 200; ++i) link.send(payload_packet(1000, i));
  sim.run();
  ASSERT_EQ(deliveries.size(), 200u);
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    // FIFO despite jitter.
    EXPECT_EQ(deliveries[i].second, i);
    if (i > 0) EXPECT_GE(deliveries[i].first, deliveries[i - 1].first);
  }
}

TEST(Link, RandomLossRate) {
  Simulator sim;
  Link::Config cfg;
  cfg.rate_bps = 1e9;
  cfg.loss_rate = 0.1;
  cfg.buffer_bytes = 1 << 26;
  Link link(sim, cfg, Rng(11));
  int received = 0;
  link.set_receiver([&](const Packet&) { ++received; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) link.send(payload_packet(100));
  sim.run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.9, 0.01);
  EXPECT_EQ(link.stats().random_losses, static_cast<std::uint64_t>(n) -
                                            static_cast<std::uint64_t>(received));
}

TEST(Link, BufferOverflowDrops) {
  Simulator sim;
  Link::Config cfg;
  cfg.rate_bps = 1e6;          // slow
  cfg.burst_bytes = 0;
  cfg.buffer_bytes = 3000;     // fits 2 packets of 1040
  Link link(sim, cfg, Rng(1));
  int received = 0;
  link.set_receiver([&](const Packet&) { ++received; });
  for (int i = 0; i < 10; ++i) link.send(payload_packet(1000));
  sim.run();
  EXPECT_LT(received, 10);
  EXPECT_GT(link.stats().buffer_drops, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(received) + link.stats().buffer_drops,
            10u);
}

TEST(Link, StatsCountArrivalsAndDeliveries) {
  Simulator sim;
  Link::Config cfg;
  cfg.rate_bps = 1e9;
  cfg.buffer_bytes = 1 << 20;
  Link link(sim, cfg, Rng(1));
  link.set_receiver([](const Packet&) {});
  for (int i = 0; i < 7; ++i) link.send(payload_packet(100));
  sim.run();
  const auto stats = link.stats();
  EXPECT_EQ(stats.arrived_packets, 7u);
  EXPECT_EQ(stats.delivered_packets, 7u);
  EXPECT_EQ(stats.delivered_bytes, 7u * 140u);
}

TEST(Link, QueueingDelayEstimate) {
  Simulator sim;
  Link::Config cfg;
  cfg.rate_bps = 8e6;  // 1 byte/us
  cfg.burst_bytes = 0;
  cfg.buffer_bytes = 1 << 20;
  Link link(sim, cfg, Rng(1));
  link.set_receiver([](const Packet&) {});
  for (int i = 0; i < 10; ++i) link.send(payload_packet(1000));
  // 10 packets of 1040 bytes queued at 1 byte/us ~ 10.4 ms total.
  EXPECT_NEAR(static_cast<double>(link.queueing_delay_estimate()),
              10.4 * kMillisecond, 1.5 * kMillisecond);
  sim.run();
  EXPECT_EQ(link.queueing_delay_estimate(), 0);
}

}  // namespace
}  // namespace ccsig::sim

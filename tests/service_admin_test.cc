// Admin endpoint protocol: one-line queries over a Unix socket answered
// with body lines and a lone "." terminator, persistent connections,
// concurrent clients, and the live ccsigd query set (healthz / statusz /
// varz / metricsz) served while the daemon ingests.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "runtime/shutdown.h"
#include "service/line_server.h"
#include "service/service.h"
#include "test_helpers.h"

namespace ccsig::service {
namespace {

namespace fs = std::filesystem;

int connect_unix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Reads from `fd` until `carry` holds one complete response (body lines
// followed by the lone "." terminator line), pumping `pump` (accept +
// serve on the server side) between nonblocking reads so the
// single-threaded unit tests do not deadlock. Consumes exactly one
// response from `carry` — pipelined responses arriving in the same recv
// stay buffered for the next call. Returns the body lines (terminator
// excluded); an empty vector on timeout/disconnect/empty body.
std::vector<std::string> read_response(
    int fd, std::string& carry,
    const std::function<void()>& pump = nullptr) {
  // End of the first response within `carry`: one past its "." line.
  const auto response_end = [&carry]() -> std::size_t {
    if (carry.rfind(".\n", 0) == 0) return 2;
    const std::size_t p = carry.find("\n.\n");
    return p == std::string::npos ? std::string::npos : p + 3;
  };
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (response_end() == std::string::npos &&
         std::chrono::steady_clock::now() < deadline) {
    if (pump) pump();
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      carry.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      return {};  // server closed the connection
    } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
      return {};
    }
    if (!pump) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::size_t end = response_end();
  if (end == std::string::npos) return {};  // timed out
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < end) {
    const std::size_t nl = carry.find('\n', pos);
    std::string line = carry.substr(pos, nl - pos);
    pos = nl + 1;
    if (line == ".") break;
    lines.push_back(std::move(line));
  }
  carry.erase(0, end);
  return lines;
}

void send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

std::string temp_sock(const std::string& tag) {
  return (fs::temp_directory_path() /
          ("ccsig_admin_" + tag + "_" + std::to_string(::getpid()) + ".sock"))
      .string();
}

TEST(AdminProtocol, AnswersQueriesWithDotTerminatorOnOneConnection) {
  const std::string sock = temp_sock("basic");
  LineServer server(sock, [](std::string_view q) -> std::string {
    if (q == "ping") return "pong";
    if (q == "multi") return "line one\nline two\n";
    if (q == "empty") return "";
    return "ERR unknown query: " + std::string(q);
  });
  const auto pump = [&server] {
    server.accept_pending();
    server.serve_pending();
  };

  int fd = connect_unix(sock);
  ASSERT_GE(fd, 0);
  std::string carry;

  send_all(fd, "ping\n");
  EXPECT_EQ(read_response(fd, carry, pump), std::vector<std::string>{"pong"});

  // The connection persists: the next query reuses it (ccsig_top polls
  // over one connection).
  send_all(fd, "multi\n");
  EXPECT_EQ(read_response(fd, carry, pump),
            (std::vector<std::string>{"line one", "line two"}));

  // An empty body is still a complete response: just the terminator.
  send_all(fd, "empty\n");
  EXPECT_TRUE(read_response(fd, carry, pump).empty());

  send_all(fd, "bogus\n");
  const auto err = read_response(fd, carry, pump);
  ASSERT_EQ(err.size(), 1u);
  EXPECT_EQ(err[0], "ERR unknown query: bogus");

  EXPECT_EQ(server.queries_answered(), 4u);
  ::close(fd);
  fs::remove(sock);
}

TEST(AdminProtocol, ReassemblesSplitQueriesAndStripsCarriageReturns) {
  const std::string sock = temp_sock("split");
  LineServer server(sock, [](std::string_view q) {
    return "got:" + std::string(q);
  });
  const auto pump = [&server] {
    server.accept_pending();
    server.serve_pending();
  };

  int fd = connect_unix(sock);
  ASSERT_GE(fd, 0);
  std::string carry;

  // A query trickling in byte-wise must not be answered early.
  send_all(fd, "hea");
  pump();
  pump();
  send_all(fd, "lthz\r\n");
  EXPECT_EQ(read_response(fd, carry, pump),
            std::vector<std::string>{"got:healthz"});

  // Two queries in one packet are answered in order.
  send_all(fd, "a\nb\n");
  EXPECT_EQ(read_response(fd, carry, pump), std::vector<std::string>{"got:a"});
  EXPECT_EQ(read_response(fd, carry, pump), std::vector<std::string>{"got:b"});
  EXPECT_EQ(server.queries_answered(), 3u);
  ::close(fd);
  fs::remove(sock);
}

TEST(AdminProtocol, ServesConcurrentClientsIndependently) {
  const std::string sock = temp_sock("multi");
  LineServer server(sock, [](std::string_view q) {
    return "echo:" + std::string(q);
  });
  const auto pump = [&server] {
    server.accept_pending();
    server.serve_pending();
  };

  constexpr int kClients = 5;
  std::vector<std::string> carries(kClients);
  std::vector<int> fds;
  for (int i = 0; i < kClients; ++i) {
    const int fd = connect_unix(sock);
    ASSERT_GE(fd, 0);
    fds.push_back(fd);
  }
  // All clients submit before any is answered; each gets its own reply.
  for (int i = 0; i < kClients; ++i) {
    send_all(fds[static_cast<std::size_t>(i)],
             "q" + std::to_string(i) + "\n");
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(read_response(fds[static_cast<std::size_t>(i)], carries[static_cast<std::size_t>(i)], pump),
              std::vector<std::string>{"echo:q" + std::to_string(i)});
  }
  EXPECT_EQ(server.queries_answered(),
            static_cast<std::size_t>(kClients));

  // A client that vanishes mid-session is reaped without disturbing the
  // rest.
  ::close(fds[0]);
  send_all(fds[1], "still-here\n");
  EXPECT_EQ(read_response(fds[1], carries[1], pump),
            std::vector<std::string>{"echo:still-here"});
  for (int i = 1; i < kClients; ++i) ::close(fds[static_cast<std::size_t>(i)]);
  fs::remove(sock);
}

TEST(AdminProtocol, OverlongQueryLineDisconnectsTheClient) {
  const std::string sock = temp_sock("long");
  LineServer server(sock,
                    [](std::string_view) { return std::string("ok"); });
  const auto pump = [&server] {
    server.accept_pending();
    server.serve_pending();
  };

  int fd = connect_unix(sock);
  ASSERT_GE(fd, 0);
  // 8 KB with no newline blows the bounded 4 KB query buffer; the server
  // must drop the client rather than grow without limit. (Small enough to
  // fit the kernel socket buffer — the blocking send cannot deadlock on
  // the not-yet-pumped server.)
  const std::string flood(8 * 1024, 'x');
  send_all(fd, flood);
  // Pump until the server has accepted, read past the bound, and reaped.
  for (int i = 0; i < 100 && server.disconnects() == 0; ++i) pump();
  EXPECT_EQ(server.subscribers(), 0u);
  EXPECT_GE(server.disconnects(), 1u);
  ::close(fd);
  fs::remove(sock);
}

TEST(AdminProtocol, LiveServiceAnswersTheFullQuerySet) {
  runtime::ShutdownLatch::reset();
  const std::string dir =
      (fs::temp_directory_path() /
       ("ccsig_admin_svc_" + std::to_string(::getpid())))
          .string();
  fs::create_directories(dir);
  const std::string capture = dir + "/capture.pcap";
  testutil::write_random_capture(7, capture);

  ServiceConfig cfg;
  SourceConfig sc;
  sc.path = capture;  // tail mode keeps the daemon serving
  cfg.sources.push_back(sc);
  cfg.verdict_log_path = dir + "/admin.log";
  cfg.socket_path = dir + "/sub.sock";
  cfg.admin_socket_path = dir + "/admin.sock";
  cfg.window_tick_ms = 10;
  ClassificationService svc(std::move(cfg));
  std::thread t([&svc] { svc.run(); });

  int fd = -1;
  for (int i = 0; i < 500 && fd < 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    fd = connect_unix(dir + "/admin.sock");
  }
  ASSERT_GE(fd, 0);
  std::string carry;

  // healthz: one line, "ok" while nothing is shedding or quarantined.
  send_all(fd, "healthz\n");
  auto health = read_response(fd, carry);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0], "ok");

  // statusz: human-oriented key=value lines covering every subsystem.
  send_all(fd, "statusz\n");
  const auto statusz = read_response(fd, carry);
  ASSERT_FALSE(statusz.empty());
  const auto has_prefix = [&statusz](std::string_view prefix) {
    for (const auto& l : statusz) {
      if (l.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_prefix("service mode=live"));
  EXPECT_TRUE(has_prefix("health "));
  EXPECT_TRUE(has_prefix("shed rung="));
  EXPECT_TRUE(has_prefix("engine shards="));
  EXPECT_TRUE(has_prefix("log path="));
  EXPECT_TRUE(has_prefix("verdicts emitted="));
  EXPECT_TRUE(has_prefix("window ticks="));
  EXPECT_TRUE(has_prefix("sources count=1"));
  EXPECT_TRUE(has_prefix("subscribers count="));

  // varz: one JSON object of windowed rates (ccsig_top's poll target).
  send_all(fd, "varz\n");
  const auto varz = read_response(fd, carry);
  ASSERT_FALSE(varz.empty());
  EXPECT_EQ(varz.front().front(), '{');
  std::string varz_all;
  for (const auto& l : varz) varz_all += l;
  EXPECT_NE(varz_all.find("\"covered_s\""), std::string::npos);
  EXPECT_NE(varz_all.find("\"rates\""), std::string::npos);

  // metricsz: Prometheus text exposition. In a CCSIG_OBS_OFF tree the
  // registry snapshot is empty, so the exposition is valid-but-empty and
  // the admin plane degrades to healthz/statusz/varz structure only.
  send_all(fd, "metricsz\n");
  const auto metrics = read_response(fd, carry);
#ifdef CCSIG_OBS_OFF
  EXPECT_TRUE(metrics.empty());
#else
  ASSERT_FALSE(metrics.empty());
  bool saw_type = false, saw_ccsig = false;
  for (const auto& l : metrics) {
    if (l.rfind("# TYPE ", 0) == 0) saw_type = true;
    if (l.rfind("ccsig_", 0) == 0) saw_ccsig = true;
  }
  EXPECT_TRUE(saw_type);
  EXPECT_TRUE(saw_ccsig);
#endif

  // Unknown queries get an ERR line, and the connection survives them.
  send_all(fd, "definitely-not-a-query\n");
  const auto err = read_response(fd, carry);
  ASSERT_EQ(err.size(), 1u);
  EXPECT_EQ(err[0].rfind("ERR unknown query:", 0), 0u);
  send_all(fd, "healthz\n");
  health = read_response(fd, carry);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0], "ok");

  ::close(fd);
  svc.request_stop();
  t.join();
  EXPECT_GE(svc.stats().admin_queries, 6u);
  EXPECT_GT(svc.stats().window_ticks, 0u);
  runtime::ShutdownLatch::reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ccsig::service

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ccsig::obs {
namespace {

TEST(MetricsRegistry, CounterAccumulatesAcrossHandles) {
  MetricsRegistry reg;
  Counter a = reg.counter("requests");
  Counter b = reg.counter("requests");  // idempotent: same slot
  a.add(3);
  b.inc();
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.counter("requests"), nullptr);
  EXPECT_EQ(snap.counter("requests")->value, 4u);
}

TEST(MetricsRegistry, DefaultConstructedHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(1.0);
  h.record(1.0);  // must not crash, records nowhere
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  Gauge g = reg.gauge("depth");
  g.set(4.0);
  g.set(2.5);
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.gauge("depth"), nullptr);
  EXPECT_DOUBLE_EQ(snap.gauge("depth")->value, 2.5);
}

TEST(MetricsRegistry, HistogramBucketsAndSum) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.record(0.5);    // bucket 0: (0, 1]
  h.record(1.0);    // bucket 0: exactly at the upper bound
  h.record(5.0);    // bucket 1
  h.record(1000.0); // overflow
  const auto snap = reg.snapshot();
  const HistogramSnapshot* s = snap.histogram("lat");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->buckets.size(), 4u);
  EXPECT_EQ(s->buckets[0], 2u);
  EXPECT_EQ(s->buckets[1], 1u);
  EXPECT_EQ(s->buckets[2], 0u);
  EXPECT_EQ(s->buckets[3], 1u);
  EXPECT_EQ(s->count(), 4u);
  EXPECT_DOUBLE_EQ(s->sum, 1006.5);
  EXPECT_DOUBLE_EQ(s->mean(), 1006.5 / 4);
}

TEST(MetricsRegistry, HistogramRejectsBadBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("empty", {}), std::runtime_error);
  EXPECT_THROW(reg.histogram("unsorted", {10.0, 1.0}), std::runtime_error);
}

TEST(MetricsRegistry, ResetZeroesValuesKeepsInstruments) {
  MetricsRegistry reg;
  Counter c = reg.counter("n");
  c.add(7);
  reg.reset();
  c.inc();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("n")->value, 1u);
}

// --- quantile math, including the exact bucket-boundary contract ---------

HistogramSnapshot hist(std::vector<double> bounds,
                       std::vector<std::uint64_t> buckets, double sum = 0) {
  HistogramSnapshot h;
  h.bounds = std::move(bounds);
  h.buckets = std::move(buckets);
  h.sum = sum;
  return h;
}

TEST(HistogramQuantile, EmptyHistogramReportsZero) {
  EXPECT_DOUBLE_EQ(hist({1, 2}, {0, 0, 0}).quantile(0.5), 0.0);
}

TEST(HistogramQuantile, SingleValueAtBucketBoundaryReportsTheBound) {
  // One value recorded exactly at bound 10 lands in the (0, 10] bucket;
  // every quantile must report 10, not something interpolated below it.
  const auto h = hist({10, 20}, {1, 0, 0}, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(HistogramQuantile, AllValuesAtSecondBucketBoundary) {
  // Five values at exactly 20 -> bucket (10, 20]; quantile(1.0) == 20.
  const auto h = hist({10, 20, 30}, {0, 5, 0, 0}, 100);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  // Lower quantiles interpolate inside (10, 20]: rank 1 of 5 -> 12.
  EXPECT_DOUBLE_EQ(h.quantile(0.2), 12.0);
}

TEST(HistogramQuantile, MedianSplitsEvenBuckets) {
  // 10 values in (0,10], 10 in (10,20]: p50 is the top of bucket 0.
  const auto h = hist({10, 20}, {10, 10, 0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(HistogramQuantile, OverflowBucketReportsLastFiniteBound) {
  const auto h = hist({10, 20}, {0, 0, 3});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(HistogramQuantile, ClampsOutOfRangeQ) {
  const auto h = hist({10}, {4, 0});
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

// --- snapshot JSON -------------------------------------------------------

TEST(MetricsSnapshot, JsonShapeIsStableAndSorted) {
  MetricsRegistry reg;
  reg.counter("z.count").inc();
  reg.counter("a.count").add(2);
  reg.gauge("depth").set(3.0);
  reg.histogram("lat", {1.0}).record(0.5);
  const std::string json = reg.snapshot().to_json();
  // Counters sorted by name: a.count before z.count.
  const auto a_pos = json.find("\"a.count\":2");
  const auto z_pos = json.find("\"z.count\":1");
  ASSERT_NE(a_pos, std::string::npos);
  ASSERT_NE(z_pos, std::string::npos);
  EXPECT_LT(a_pos, z_pos);
  EXPECT_NE(json.find("\"gauges\":{\"depth\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[1]"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(MetricsRegistry, GlobalRegistryCarriesSimInstrumentation) {
  // The built-in instruments register lazily; just touching the global
  // registry must be safe and snapshot cleanly.
  const auto snap = MetricsRegistry::global().snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
}

}  // namespace
}  // namespace ccsig::obs

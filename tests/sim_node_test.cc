#include "sim/node.h"

#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/trace.h"

namespace ccsig::sim {
namespace {

Packet addressed(Address src, Address dst, Port sport, Port dport) {
  Packet p;
  p.key = FlowKey{src, dst, sport, dport};
  p.payload_bytes = 100;
  return p;
}

TEST(Node, DeliversToRegisteredEndpoint) {
  Simulator sim;
  Node node(sim, 1, "host");
  int got = 0;
  node.register_endpoint(80, [&](const Packet&) { ++got; });
  node.receive(addressed(9, 1, 1234, 80));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(node.delivered_packets(), 1u);
}

TEST(Node, UndeliverableWithoutEndpoint) {
  Simulator sim;
  Node node(sim, 1, "host");
  node.receive(addressed(9, 1, 1234, 81));
  EXPECT_EQ(node.undeliverable_packets(), 1u);
}

TEST(Node, UnregisterStopsDelivery) {
  Simulator sim;
  Node node(sim, 1, "host");
  int got = 0;
  node.register_endpoint(80, [&](const Packet&) { ++got; });
  node.unregister_endpoint(80);
  node.receive(addressed(9, 1, 1, 80));
  EXPECT_EQ(got, 0);
  EXPECT_EQ(node.undeliverable_packets(), 1u);
}

TEST(Node, ForwardsViaRoute) {
  Network net(1);
  Node* a = net.add_node("a");
  Node* r = net.add_node("r");
  Node* b = net.add_node("b");
  Link::Config fast;
  fast.rate_bps = 1e9;
  fast.buffer_bytes = 1 << 20;
  auto ar = net.connect(a, r, fast);
  auto rb = net.connect(r, b, fast);
  (void)ar;
  a->add_route(b->address(), ar.ab);
  r->add_route(b->address(), rb.ab);
  int got = 0;
  b->register_endpoint(80, [&](const Packet&) { ++got; });
  a->send(addressed(a->address(), b->address(), 5, 80));
  net.sim().run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(r->forwarded_packets(), 1u);
}

TEST(Node, DefaultRouteUsedAsFallback) {
  Network net(1);
  Node* a = net.add_node("a");
  Node* b = net.add_node("b");
  Link::Config fast;
  fast.rate_bps = 1e9;
  fast.buffer_bytes = 1 << 20;
  auto ab = net.connect(a, b, fast);
  // Send to an address with no explicit route; default covers it if b owns it.
  a->set_default_route(ab.ab);
  int got = 0;
  b->register_endpoint(7, [&](const Packet&) { ++got; });
  a->send(addressed(a->address(), b->address(), 1, 7));
  net.sim().run();
  EXPECT_EQ(got, 1);
}

TEST(Node, NoRouteCountsUndeliverable) {
  Simulator sim;
  Node node(sim, 1, "lonely");
  node.send(addressed(1, 99, 1, 2));
  EXPECT_EQ(node.undeliverable_packets(), 1u);
}

class CountingTap : public TraceSink {
 public:
  int count = 0;
  void on_packet(Time, const Packet&) override { ++count; }
};

TEST(Node, TapsSeeSendAndReceive) {
  Simulator sim;
  Node node(sim, 1, "host");
  CountingTap tap;
  node.add_tap(&tap);
  node.register_endpoint(80, [](const Packet&) {});
  node.receive(addressed(9, 1, 1, 80));   // receive
  node.send(addressed(1, 1, 2, 80));      // loopback send
  EXPECT_EQ(tap.count, 2);
  node.remove_tap(&tap);
  node.receive(addressed(9, 1, 1, 80));
  EXPECT_EQ(tap.count, 2);
}

TEST(Node, LoopbackDelivery) {
  Simulator sim;
  Node node(sim, 1, "host");
  int got = 0;
  node.register_endpoint(80, [&](const Packet&) { ++got; });
  node.send(addressed(1, 1, 5, 80));
  EXPECT_EQ(got, 1);
}

TEST(Network, DuplicateNodeNameThrows) {
  Network net(1);
  net.add_node("x");
  EXPECT_THROW(net.add_node("x"), std::invalid_argument);
}

TEST(Network, NodeLookup) {
  Network net(1);
  Node* a = net.add_node("alpha");
  EXPECT_EQ(net.node("alpha"), a);
  EXPECT_THROW(net.node("missing"), std::out_of_range);
}

TEST(Network, SequentialAddresses) {
  Network net(1);
  Node* a = net.add_node("a");
  Node* b = net.add_node("b");
  EXPECT_EQ(a->address() + 1, b->address());
}

}  // namespace
}  // namespace ccsig::sim

#include "core/classifier.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace ccsig {
namespace {

ml::Dataset toy_signatures() {
  // Separable toy data in (norm_diff, cov) space.
  ml::Dataset d({"norm_diff", "cov"});
  for (int i = 0; i < 20; ++i) {
    const double jitter = i * 0.001;
    d.add({0.8 + jitter, 0.4 + jitter}, 1);   // self
    d.add({0.15 + jitter, 0.04 + jitter}, 0); // external
  }
  return d;
}

TEST(Classifier, UntrainedThrows) {
  CongestionClassifier clf;
  EXPECT_FALSE(clf.trained());
  EXPECT_THROW(clf.classify(0.5, 0.2), std::logic_error);
}

TEST(Classifier, TrainAndClassify) {
  CongestionClassifier clf;
  clf.train(toy_signatures());
  ASSERT_TRUE(clf.trained());
  EXPECT_EQ(clf.classify(0.85, 0.45).verdict,
            Verdict::kSelfInducedCongestion);
  EXPECT_EQ(clf.classify(0.1, 0.03).verdict, Verdict::kExternalCongestion);
}

TEST(Classifier, ConfidenceWithinRange) {
  CongestionClassifier clf;
  clf.train(toy_signatures());
  const auto c = clf.classify(0.85, 0.45);
  EXPECT_GE(c.confidence, 0.5);
  EXPECT_LE(c.confidence, 1.0);
}

TEST(Classifier, ClassifiesFromFlowFeatures) {
  CongestionClassifier clf;
  clf.train(toy_signatures());
  features::FlowFeatures f;
  f.norm_diff = 0.82;
  f.cov = 0.41;
  EXPECT_EQ(clf.classify(f).verdict, Verdict::kSelfInducedCongestion);
}

TEST(Classifier, SerializeRoundTrip) {
  CongestionClassifier clf;
  clf.train(toy_signatures());
  const auto restored = CongestionClassifier::deserialize(clf.serialize());
  for (double nd = 0.0; nd <= 1.0; nd += 0.05) {
    for (double cov = 0.0; cov <= 0.6; cov += 0.05) {
      EXPECT_EQ(restored.classify(nd, cov).verdict,
                clf.classify(nd, cov).verdict);
    }
  }
}

TEST(Classifier, SaveLoadFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ccsig_model_rt.tree")
          .string();
  CongestionClassifier clf;
  clf.train(toy_signatures());
  clf.save(path);
  const auto loaded = CongestionClassifier::load(path);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded.classify(0.8, 0.4).verdict,
            clf.classify(0.8, 0.4).verdict);
}

TEST(Classifier, LoadMissingFileThrows) {
  EXPECT_THROW(CongestionClassifier::load("/no/such/model.tree"),
               std::runtime_error);
}

TEST(Classifier, PretrainedModelWorks) {
  const auto clf = CongestionClassifier::pretrained();
  ASSERT_TRUE(clf.trained());
  // Canonical signatures from the paper's Figure 1 setup must classify
  // correctly with the bundled model.
  EXPECT_EQ(clf.classify(0.83, 0.45).verdict,
            Verdict::kSelfInducedCongestion);
  EXPECT_EQ(clf.classify(0.10, 0.03).verdict, Verdict::kExternalCongestion);
}

TEST(Classifier, DescribeRendersTree) {
  const auto clf = CongestionClassifier::pretrained();
  const std::string desc = clf.describe();
  EXPECT_NE(desc.find("cov"), std::string::npos);
  EXPECT_NE(desc.find("class"), std::string::npos);
}

TEST(Classifier, MaxDepthRespected) {
  CongestionClassifier clf;
  clf.train(toy_signatures(), /*max_depth=*/2);
  EXPECT_LE(clf.tree().depth(), 2);
}

TEST(VerdictNames, Stringify) {
  EXPECT_STREQ(to_string(Verdict::kExternalCongestion),
               "external-congestion");
  EXPECT_STREQ(to_string(Verdict::kSelfInducedCongestion),
               "self-induced-congestion");
}

}  // namespace
}  // namespace ccsig

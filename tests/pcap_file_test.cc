#include "pcap/pcap_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace ccsig::pcap {
namespace {

class PcapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("ccsig_pcap_test_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" + std::to_string(counter_++)))
                .string() +
            ".pcap";
  }
  void TearDown() override { std::filesystem::remove(path_); }

  static int counter_;
  std::string path_;
};

int PcapFileTest::counter_ = 0;

TEST_F(PcapFileTest, WriteReadRoundTrip) {
  {
    PcapWriter writer(path_);
    const std::uint8_t a[] = {1, 2, 3, 4};
    const std::uint8_t b[] = {9, 8, 7};
    writer.write(1 * sim::kSecond + 500 * sim::kMicrosecond, a, 4);
    writer.write(2 * sim::kSecond, b, 3);
    EXPECT_EQ(writer.records_written(), 2u);
  }
  const auto records = read_all(path_);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].timestamp, 1 * sim::kSecond + 500 * sim::kMicrosecond);
  EXPECT_EQ(records[0].data, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(records[0].orig_len, 4u);
  EXPECT_EQ(records[1].data, (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST_F(PcapFileTest, SnaplenTruncatesButKeepsOrigLen) {
  {
    PcapWriter writer(path_, /*snaplen=*/2);
    const std::uint8_t data[] = {1, 2, 3, 4, 5};
    writer.write(0, data, 5);
  }
  const auto records = read_all(path_);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].data.size(), 2u);
  EXPECT_EQ(records[0].orig_len, 5u);
}

TEST_F(PcapFileTest, HeaderFieldsSurvive) {
  { PcapWriter writer(path_, 96); }
  PcapReader reader(path_);
  EXPECT_EQ(reader.snaplen(), 96u);
  EXPECT_EQ(reader.linktype(), kLinktypeEthernet);
  EXPECT_FALSE(reader.next().has_value());  // empty file
}

TEST_F(PcapFileTest, MicrosecondPrecisionOnDisk) {
  {
    PcapWriter writer(path_);
    const std::uint8_t d[] = {0};
    // Nanoseconds below 1 µs are truncated by the classic format.
    writer.write(123 * sim::kMicrosecond + 789, d, 1);
  }
  const auto records = read_all(path_);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].timestamp, 123 * sim::kMicrosecond);
}

TEST_F(PcapFileTest, RejectsBadMagic) {
  {
    std::ofstream out(path_, std::ios::binary);
    const char junk[32] = "not a pcap file at all";
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW(PcapReader reader(path_), std::runtime_error);
}

TEST_F(PcapFileTest, RejectsTruncatedRecord) {
  {
    PcapWriter writer(path_);
    const std::uint8_t d[] = {1, 2, 3, 4};
    writer.write(0, d, 4);
  }
  // Chop the last 2 bytes off.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 2);
  PcapReader reader(path_);
  EXPECT_THROW((void)reader.next(), std::runtime_error);
}

TEST_F(PcapFileTest, MissingFileThrows) {
  EXPECT_THROW(PcapReader reader("/nonexistent/dir/x.pcap"),
               std::runtime_error);
  EXPECT_THROW(PcapWriter writer("/nonexistent/dir/x.pcap"),
               std::runtime_error);
}

TEST_F(PcapFileTest, ManyRecordsStress) {
  const int n = 5000;
  {
    PcapWriter writer(path_);
    std::uint8_t d[8] = {};
    for (int i = 0; i < n; ++i) {
      d[0] = static_cast<std::uint8_t>(i & 0xFF);
      writer.write(i * sim::kMicrosecond, d, 8);
    }
  }
  const auto records = read_all(path_);
  ASSERT_EQ(records.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].data[0], i & 0xFF);
  }
}

}  // namespace
}  // namespace ccsig::pcap

#include "ml/split.h"

#include <gtest/gtest.h>

#include <set>

namespace ccsig::ml {
namespace {

Dataset imbalanced(std::size_t n0, std::size_t n1) {
  Dataset d({"x"});
  for (std::size_t i = 0; i < n0; ++i) {
    d.add({static_cast<double>(i)}, 0);
  }
  for (std::size_t i = 0; i < n1; ++i) {
    d.add({1000.0 + static_cast<double>(i)}, 1);
  }
  return d;
}

TEST(StratifiedSplit, PreservesClassProportions) {
  const Dataset d = imbalanced(80, 20);
  sim::Rng rng(1);
  const auto [train, test] = stratified_split(d, 0.25, rng);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.size(), 75u);
  const auto test_counts = test.class_counts();
  EXPECT_EQ(test_counts[0], 20u);
  EXPECT_EQ(test_counts[1], 5u);
}

TEST(StratifiedSplit, DisjointAndComplete) {
  const Dataset d = imbalanced(30, 30);
  sim::Rng rng(2);
  const auto [train, test] = stratified_split(d, 0.5, rng);
  std::multiset<double> all;
  for (std::size_t i = 0; i < train.size(); ++i) all.insert(train.row(i)[0]);
  for (std::size_t i = 0; i < test.size(); ++i) all.insert(test.row(i)[0]);
  EXPECT_EQ(all.size(), 60u);
  // Every original value present exactly once.
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(all.count(d.row(i)[0]), 1u);
  }
}

TEST(StratifiedSplit, DeterministicGivenSeed) {
  const Dataset d = imbalanced(50, 50);
  sim::Rng rng1(42), rng2(42);
  const auto [train1, test1] = stratified_split(d, 0.3, rng1);
  const auto [train2, test2] = stratified_split(d, 0.3, rng2);
  ASSERT_EQ(test1.size(), test2.size());
  for (std::size_t i = 0; i < test1.size(); ++i) {
    EXPECT_EQ(test1.row(i)[0], test2.row(i)[0]);
  }
}

TEST(StratifiedSplit, InvalidFractionThrows) {
  const Dataset d = imbalanced(10, 10);
  sim::Rng rng(3);
  EXPECT_THROW(stratified_split(d, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split(d, 1.1, rng), std::invalid_argument);
}

TEST(StratifiedSample, TwentyPercentLikePaper) {
  const Dataset d = imbalanced(100, 100);
  sim::Rng rng(4);
  const auto [sample, rest] = stratified_sample(d, 0.2, rng);
  EXPECT_EQ(sample.size(), 40u);
  EXPECT_EQ(rest.size(), 160u);
  const auto counts = sample.class_counts();
  EXPECT_EQ(counts[0], 20u);
  EXPECT_EQ(counts[1], 20u);
}

Dataset many_small_classes(const std::vector<std::size_t>& sizes) {
  Dataset d({"x"});
  double v = 0.0;
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    for (std::size_t i = 0; i < sizes[c]; ++i) {
      d.add({v++}, static_cast<int>(c));
    }
  }
  return d;
}

// Regression: per-class `fraction * size + 0.5` rounding used to overshoot
// the requested total by up to one row per class. Four singleton classes at
// fraction 0.5 sampled 4 rows instead of 2; the largest-remainder rule
// apportions exactly round(fraction * N).
TEST(StratifiedSample, SingletonClassesHitExactTotal) {
  const Dataset d = many_small_classes({1, 1, 1, 1});
  sim::Rng rng(7);
  const auto [sample, rest] = stratified_sample(d, 0.5, rng);
  EXPECT_EQ(sample.size(), 2u);
  EXPECT_EQ(rest.size(), 2u);
}

TEST(StratifiedSample, ThirdsApportionWithoutDrift) {
  // 21 rows at fraction 1/3: exact total is 7, one-third of each class is
  // 2.33 — old rounding took 2 per class (6 rows); largest remainder tops
  // up one class to reach 7.
  const Dataset d = many_small_classes({7, 7, 7});
  sim::Rng rng(8);
  const auto [sample, rest] = stratified_sample(d, 1.0 / 3.0, rng);
  EXPECT_EQ(sample.size(), 7u);
  EXPECT_EQ(rest.size(), 14u);
  const auto counts = sample.class_counts();
  ASSERT_EQ(counts.size(), 3u);
  for (std::size_t count : counts) {
    EXPECT_GE(count, 2u);
    EXPECT_LE(count, 3u);
  }
}

TEST(StratifiedSample, RemainderTieBreaksTowardLowerClass) {
  // Classes {2, 2, 1} at fraction 0.5: exact quotas {1, 1, 0.5}, total
  // round(2.5) = 3. Only class 2 has a fractional remainder, so it gets
  // the top-up deterministically.
  const Dataset d = many_small_classes({2, 2, 1});
  sim::Rng rng(9);
  const auto [sample, rest] = stratified_sample(d, 0.5, rng);
  EXPECT_EQ(sample.size(), 3u);
  const auto counts = sample.class_counts();
  EXPECT_EQ(counts.at(0), 1u);
  EXPECT_EQ(counts.at(1), 1u);
  EXPECT_EQ(counts.at(2), 1u);
}

TEST(StratifiedSample, BoundaryFractions) {
  const Dataset d = many_small_classes({5, 3});
  sim::Rng rng0(10), rng1(11);
  const auto [none, all] = stratified_sample(d, 0.0, rng0);
  EXPECT_EQ(none.size(), 0u);
  EXPECT_EQ(all.size(), d.size());
  const auto [everything, nothing] = stratified_sample(d, 1.0, rng1);
  EXPECT_EQ(everything.size(), d.size());
  EXPECT_EQ(nothing.size(), 0u);
}

class FoldProperties : public ::testing::TestWithParam<int> {};

TEST_P(FoldProperties, FoldsPartitionTheDataset) {
  const int k = GetParam();
  const Dataset d = imbalanced(53, 31);
  sim::Rng rng(5);
  const auto folds = stratified_folds(d, k, rng);
  ASSERT_EQ(folds.size(), static_cast<std::size_t>(k));
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    for (std::size_t idx : fold) {
      EXPECT_TRUE(seen.insert(idx).second) << "index appears twice";
      EXPECT_LT(idx, d.size());
    }
  }
  EXPECT_EQ(seen.size(), d.size());
  // Fold sizes are balanced within one element per class.
  for (const auto& fold : folds) {
    EXPECT_NEAR(static_cast<double>(fold.size()),
                static_cast<double>(d.size()) / k, 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, FoldProperties, ::testing::Values(2, 3, 5, 10));

TEST(Folds, InvalidKThrows) {
  const Dataset d = imbalanced(4, 4);
  sim::Rng rng(6);
  EXPECT_THROW(stratified_folds(d, 1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ccsig::ml

#include "features/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.h"

namespace ccsig::features {
namespace {

TEST(Summarize, HandComputedValues) {
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic example
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(NormDiff, HandComputed) {
  const double rtts[] = {20.0, 60.0, 100.0};
  const auto nd = norm_diff(rtts);
  ASSERT_TRUE(nd.has_value());
  EXPECT_DOUBLE_EQ(*nd, 0.8);  // (100-20)/100
}

TEST(NormDiff, ConstantSeriesIsZero) {
  const double rtts[] = {50.0, 50.0, 50.0};
  EXPECT_DOUBLE_EQ(*norm_diff(rtts), 0.0);
}

TEST(NormDiff, EmptyOrDegenerate) {
  EXPECT_FALSE(norm_diff({}).has_value());
  const double zeros[] = {0.0, 0.0};
  EXPECT_FALSE(norm_diff(zeros).has_value());
}

TEST(CoV, HandComputed) {
  const double rtts[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto cv = coefficient_of_variation(rtts);
  ASSERT_TRUE(cv.has_value());
  EXPECT_DOUBLE_EQ(*cv, 2.0 / 5.0);
}

TEST(CoV, ConstantSeriesIsZero) {
  const double rtts[] = {42.0, 42.0, 42.0, 42.0};
  EXPECT_DOUBLE_EQ(*coefficient_of_variation(rtts), 0.0);
}

TEST(CoV, EmptyIsNullopt) {
  EXPECT_FALSE(coefficient_of_variation({}).has_value());
}

TEST(Slope, IncreasingSeriesPositive) {
  const double rtts[] = {10, 20, 30, 40, 50};
  const auto slope = normalized_rtt_slope(rtts);
  ASSERT_TRUE(slope.has_value());
  EXPECT_GT(*slope, 0.0);
}

TEST(Slope, FlatSeriesZero) {
  const double rtts[] = {30, 30, 30, 30};
  EXPECT_DOUBLE_EQ(*normalized_rtt_slope(rtts), 0.0);
}

TEST(Slope, DecreasingNegative) {
  const double rtts[] = {50, 40, 30, 20};
  EXPECT_LT(*normalized_rtt_slope(rtts), 0.0);
}

TEST(Iqr, HandComputed) {
  const double rtts[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};  // median 5, q1 3, q3 7
  const auto iqr = normalized_iqr(rtts);
  ASSERT_TRUE(iqr.has_value());
  EXPECT_DOUBLE_EQ(*iqr, 4.0 / 5.0);
}

TEST(Iqr, TooFewSamples) {
  const double rtts[] = {1, 2, 3};
  EXPECT_FALSE(normalized_iqr(rtts).has_value());
}

TEST(ToMillis, ConvertsDurations) {
  const sim::Duration durs[] = {20 * sim::kMillisecond,
                                500 * sim::kMicrosecond};
  const auto ms = to_millis(durs);
  ASSERT_EQ(ms.size(), 2u);
  EXPECT_DOUBLE_EQ(ms[0], 20.0);
  EXPECT_DOUBLE_EQ(ms[1], 0.5);
}

// Property sweep: for random positive RTT vectors, NormDiff is in [0, 1],
// CoV is non-negative, and both are invariant to scaling all samples.
class MetricProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricProperties, RangeAndScaleInvariance) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 60));
    std::vector<double> rtts;
    for (int i = 0; i < n; ++i) rtts.push_back(rng.uniform(0.5, 300.0));

    const auto nd = norm_diff(rtts);
    const auto cv = coefficient_of_variation(rtts);
    ASSERT_TRUE(nd.has_value());
    ASSERT_TRUE(cv.has_value());
    EXPECT_GE(*nd, 0.0);
    EXPECT_LE(*nd, 1.0);
    EXPECT_GE(*cv, 0.0);

    std::vector<double> scaled = rtts;
    const double k = rng.uniform(0.1, 10.0);
    for (double& v : scaled) v *= k;
    EXPECT_NEAR(*norm_diff(scaled), *nd, 1e-9);
    EXPECT_NEAR(*coefficient_of_variation(scaled), *cv, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperties,
                         ::testing::Values(1, 2, 3, 4, 5));

// Property: adding a constant to every sample reduces both metrics
// (the "already full buffer raises the baseline" effect the paper uses).
TEST(MetricProperties, BaselineShiftReducesBothMetrics) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> rtts;
    for (int i = 0; i < 20; ++i) rtts.push_back(rng.uniform(10.0, 50.0));
    std::vector<double> shifted = rtts;
    for (double& v : shifted) v += 100.0;
    EXPECT_LT(*norm_diff(shifted), *norm_diff(rtts) + 1e-12);
    EXPECT_LT(*coefficient_of_variation(shifted),
              *coefficient_of_variation(rtts) + 1e-12);
  }
}

}  // namespace
}  // namespace ccsig::features

// Shared fixtures for integration-style tests: a minimal two-node network
// with one shaped bottleneck link, plus helpers to run TCP transfers on it,
// a shared quick testbed configuration, and a seeded random multi-flow
// capture generator for differential (stream vs batch) testing.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "analysis/trace_recorder.h"
#include "pcap/capture.h"
#include "sim/network.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"
#include "testbed/experiment.h"

namespace ccsig::testutil {

/// server ── bottleneck link ── client, with a trace tap at the server.
struct TwoNodePath {
  explicit TwoNodePath(sim::Link::Config bottleneck, std::uint64_t seed = 1)
      : net(seed) {
    server = net.add_node("server");
    client = net.add_node("client");
    sim::Link::Config up = bottleneck;
    up.loss_rate = 0;  // keep the ACK path clean unless a test overrides
    auto duplex = net.connect(server, client, bottleneck, up);
    down = duplex.ab;
    up_link = duplex.ba;
    server->add_tap(&recorder);
  }

  sim::FlowKey flow_key(sim::Port sport = 5001, sim::Port dport = 5002) const {
    return sim::FlowKey{server->address(), client->address(), sport, dport};
  }

  sim::Network net;
  sim::Node* server = nullptr;
  sim::Node* client = nullptr;
  sim::Link* down = nullptr;
  sim::Link* up_link = nullptr;
  analysis::TraceRecorder recorder;
};

inline sim::Link::Config basic_link(double rate_bps, double delay_ms,
                                    double buffer_ms, double loss = 0.0) {
  sim::Link::Config cfg;
  cfg.rate_bps = rate_bps;
  cfg.prop_delay = sim::from_millis(delay_ms);
  cfg.buffer_bytes = sim::buffer_bytes_for(rate_bps, buffer_ms);
  cfg.loss_rate = loss;
  return cfg;
}

/// Runs a finite transfer to completion (or a deadline); returns true when
/// all bytes were acknowledged.
struct TransferResult {
  bool completed = false;
  sim::Time completed_at = -1;
  tcp::TcpSource::Stats source_stats;
  tcp::TcpSink::Stats sink_stats;
};

inline TransferResult run_transfer(TwoNodePath& path, std::uint64_t bytes,
                                   const std::string& cc = "reno",
                                   sim::Duration deadline =
                                       sim::from_seconds(120),
                                   bool use_sack = true,
                                   int segments_per_ack = 2) {
  const sim::FlowKey key = path.flow_key();

  tcp::TcpSink::Config sink_cfg;
  sink_cfg.data_key = key;
  sink_cfg.segments_per_ack = segments_per_ack;
  tcp::TcpSink sink(path.net.sim(), path.client, sink_cfg);

  tcp::TcpSource::Config src_cfg;
  src_cfg.key = key;
  src_cfg.bytes_to_send = bytes;
  src_cfg.congestion_control = cc;
  src_cfg.use_sack = use_sack;
  tcp::TcpSource source(path.net.sim(), path.server, src_cfg);

  TransferResult result;
  source.set_on_complete([&] {
    result.completed = true;
    result.completed_at = path.net.sim().now();
  });
  source.start();
  path.net.sim().run_until(deadline);
  result.source_stats = source.stats();
  result.sink_stats = sink.stats();
  return result;
}

/// The short (4 s test, 2 s warmup) testbed configuration used by the
/// integration suites — one definition instead of a copy per test file.
inline testbed::TestbedConfig quick_testbed_config(testbed::Scenario scenario,
                                                   std::uint64_t seed) {
  testbed::TestbedConfig cfg;
  cfg.scenario = scenario;
  cfg.test_duration = sim::from_seconds(4);
  cfg.warmup = sim::from_seconds(2);
  cfg.seed = seed;
  return cfg;
}

/// Writes a deterministic pseudo-random server-side capture to `pcap_path`:
/// 1–3 concurrent TCP transfers (staggered starts, mixed congestion
/// controls and receiver configs) over one randomly shaped bottleneck.
/// Everything — link rate, latency, buffer, loss, flow count, sizes — is a
/// pure function of `seed` (std::mt19937_64 is fully specified, and values
/// are derived by modulo rather than through implementation-defined
/// distributions). Returns the number of flows started.
inline int write_random_capture(std::uint64_t seed,
                                const std::string& pcap_path) {
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  const auto pick = [&rng](std::uint64_t n) {
    return static_cast<std::size_t>(rng() % n);
  };

  const double rates_mbps[] = {5, 10, 20, 50};
  const double delays_ms[] = {5, 10, 20, 40};
  const double buffers_ms[] = {15, 25, 50, 100};
  const double losses[] = {0.0, 0.0, 0.001, 0.005};
  const char* ccs[] = {"reno", "cubic", "bbr"};

  TwoNodePath path(basic_link(rates_mbps[pick(4)] * 1e6, delays_ms[pick(4)],
                              buffers_ms[pick(4)], losses[pick(4)]),
                   seed + 1);
  pcap::PcapCaptureTap tap(pcap_path);
  path.server->add_tap(&tap);

  const int flows = 1 + static_cast<int>(pick(3));
  std::vector<std::unique_ptr<tcp::TcpSink>> sinks;
  std::vector<std::unique_ptr<tcp::TcpSource>> sources;
  for (int f = 0; f < flows; ++f) {
    const sim::FlowKey key =
        path.flow_key(static_cast<sim::Port>(5001 + 2 * f),
                      static_cast<sim::Port>(5002 + 2 * f));

    tcp::TcpSink::Config sink_cfg;
    sink_cfg.data_key = key;
    sink_cfg.segments_per_ack = 1 + static_cast<int>(pick(2));
    sinks.push_back(std::make_unique<tcp::TcpSink>(path.net.sim(),
                                                   path.client, sink_cfg));

    tcp::TcpSource::Config src_cfg;
    src_cfg.key = key;
    src_cfg.bytes_to_send = 60'000 + 1'000 * pick(240);
    src_cfg.congestion_control = ccs[pick(3)];
    src_cfg.use_sack = pick(2) == 0;
    sources.push_back(std::make_unique<tcp::TcpSource>(path.net.sim(),
                                                       path.server, src_cfg));
    tcp::TcpSource* src = sources.back().get();
    const sim::Time start_at =
        static_cast<sim::Time>(pick(500)) * sim::kMillisecond;
    path.net.sim().schedule_at(start_at, [src] { src->start(); });
  }
  path.net.sim().run_until(sim::from_seconds(60));
  path.server->remove_tap(&tap);
  tap.flush();
  return flows;
}

}  // namespace ccsig::testutil

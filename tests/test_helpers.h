// Shared fixtures for integration-style tests: a minimal two-node network
// with one shaped bottleneck link, plus helpers to run TCP transfers on it.
#pragma once

#include <memory>

#include "analysis/trace_recorder.h"
#include "sim/network.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"

namespace ccsig::testutil {

/// server ── bottleneck link ── client, with a trace tap at the server.
struct TwoNodePath {
  explicit TwoNodePath(sim::Link::Config bottleneck, std::uint64_t seed = 1)
      : net(seed) {
    server = net.add_node("server");
    client = net.add_node("client");
    sim::Link::Config up = bottleneck;
    up.loss_rate = 0;  // keep the ACK path clean unless a test overrides
    auto duplex = net.connect(server, client, bottleneck, up);
    down = duplex.ab;
    up_link = duplex.ba;
    server->add_tap(&recorder);
  }

  sim::FlowKey flow_key(sim::Port sport = 5001, sim::Port dport = 5002) const {
    return sim::FlowKey{server->address(), client->address(), sport, dport};
  }

  sim::Network net;
  sim::Node* server = nullptr;
  sim::Node* client = nullptr;
  sim::Link* down = nullptr;
  sim::Link* up_link = nullptr;
  analysis::TraceRecorder recorder;
};

inline sim::Link::Config basic_link(double rate_bps, double delay_ms,
                                    double buffer_ms, double loss = 0.0) {
  sim::Link::Config cfg;
  cfg.rate_bps = rate_bps;
  cfg.prop_delay = sim::from_millis(delay_ms);
  cfg.buffer_bytes = sim::buffer_bytes_for(rate_bps, buffer_ms);
  cfg.loss_rate = loss;
  return cfg;
}

/// Runs a finite transfer to completion (or a deadline); returns true when
/// all bytes were acknowledged.
struct TransferResult {
  bool completed = false;
  sim::Time completed_at = -1;
  tcp::TcpSource::Stats source_stats;
  tcp::TcpSink::Stats sink_stats;
};

inline TransferResult run_transfer(TwoNodePath& path, std::uint64_t bytes,
                                   const std::string& cc = "reno",
                                   sim::Duration deadline =
                                       sim::from_seconds(120),
                                   bool use_sack = true,
                                   int segments_per_ack = 2) {
  const sim::FlowKey key = path.flow_key();

  tcp::TcpSink::Config sink_cfg;
  sink_cfg.data_key = key;
  sink_cfg.segments_per_ack = segments_per_ack;
  tcp::TcpSink sink(path.net.sim(), path.client, sink_cfg);

  tcp::TcpSource::Config src_cfg;
  src_cfg.key = key;
  src_cfg.bytes_to_send = bytes;
  src_cfg.congestion_control = cc;
  src_cfg.use_sack = use_sack;
  tcp::TcpSource source(path.net.sim(), path.server, src_cfg);

  TransferResult result;
  source.set_on_complete([&] {
    result.completed = true;
    result.completed_at = path.net.sim().now();
  });
  source.start();
  path.net.sim().run_until(deadline);
  result.source_stats = source.stats();
  result.sink_stats = sink.stats();
  return result;
}

}  // namespace ccsig::testutil

// Integration: the Figure-2 testbed produces the paper's signatures.
// These tests run full (if short) packet-level experiments and are the
// slowest in the suite.
#include "testbed/experiment.h"

#include <gtest/gtest.h>

#include "test_helpers.h"
#include "testbed/labeler.h"

namespace ccsig::testbed {
namespace {

TestbedConfig quick_config(Scenario scenario, std::uint64_t seed) {
  return testutil::quick_testbed_config(scenario, seed);
}

TEST(TestbedExperiment, SelfInducedSaturatesAccessLink) {
  const TestResult r = run_testbed_experiment(
      quick_config(Scenario::kSelfInduced, 101));
  ASSERT_TRUE(r.features.has_value());
  // 20 Mbps access link: the test flow should get most of it.
  EXPECT_GT(r.receiver_throughput_bps, 0.8 * r.access_capacity_bps);
  // Self-induced signature: large RTT swing and variation.
  EXPECT_GT(r.features->norm_diff, 0.5);
  EXPECT_GT(r.features->cov, 0.2);
  EXPECT_TRUE(r.features->slow_start_ended_by_retransmission);
}

TEST(TestbedExperiment, ExternalCongestionStarvesFlow) {
  const TestResult r = run_testbed_experiment(
      quick_config(Scenario::kExternal, 202));
  // Well below the access capacity: the interconnect is the bottleneck.
  EXPECT_LT(r.receiver_throughput_bps, 0.8 * r.access_capacity_bps);
  // (Signature separation is asserted statistically in
  //  SignaturesSeparateAcrossScenarios; a single external run can land in
  //  the legitimate gray zone the paper describes.)
}

TEST(TestbedExperiment, SignaturesSeparateAcrossScenarios) {
  const TestResult self_r = run_testbed_experiment(
      quick_config(Scenario::kSelfInduced, 303));
  const TestResult ext_r = run_testbed_experiment(
      quick_config(Scenario::kExternal, 304));
  ASSERT_TRUE(self_r.features.has_value());
  if (ext_r.features) {
    EXPECT_GT(self_r.features->norm_diff, ext_r.features->norm_diff);
    EXPECT_GT(self_r.features->cov, ext_r.features->cov);
  }
}

TEST(TestbedExperiment, BaseRttMatchesConfiguredLatency) {
  TestbedConfig cfg = quick_config(Scenario::kSelfInduced, 404);
  cfg.access_latency_ms = 40;
  const TestResult r = run_testbed_experiment(cfg);
  ASSERT_TRUE(r.features.has_value());
  EXPECT_GT(r.features->min_rtt_ms, 38.0);
  EXPECT_LT(r.features->min_rtt_ms, 60.0);
}

TEST(TestbedExperiment, BufferSizeBoundsRttSwing) {
  TestbedConfig cfg = quick_config(Scenario::kSelfInduced, 505);
  cfg.access_buffer_ms = 50;
  const TestResult r = run_testbed_experiment(cfg);
  ASSERT_TRUE(r.features.has_value());
  // Max-min RTT is capped by the buffer depth (plus jitter slack).
  EXPECT_LT(r.features->max_rtt_ms - r.features->min_rtt_ms, 50.0 + 15.0);
  EXPECT_GT(r.features->max_rtt_ms - r.features->min_rtt_ms, 25.0);
}

TEST(TestbedExperiment, DeterministicGivenSeed) {
  const TestResult a = run_testbed_experiment(
      quick_config(Scenario::kSelfInduced, 777));
  const TestResult b = run_testbed_experiment(
      quick_config(Scenario::kSelfInduced, 777));
  ASSERT_EQ(a.features.has_value(), b.features.has_value());
  ASSERT_TRUE(a.features.has_value());
  EXPECT_DOUBLE_EQ(a.features->norm_diff, b.features->norm_diff);
  EXPECT_DOUBLE_EQ(a.features->cov, b.features->cov);
  EXPECT_DOUBLE_EQ(a.receiver_throughput_bps, b.receiver_throughput_bps);
}

TEST(Labeler, SelfRunReachingCapacityIsSelf) {
  TestResult r;
  r.scenario = Scenario::kSelfInduced;
  r.access_capacity_bps = 20e6;
  features::FlowFeatures f;
  f.slow_start_throughput_bps = 18e6;
  r.features = f;
  const auto label = label_test(r, 0.8);
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(*label, CongestionClass::kSelfInduced);
}

TEST(Labeler, ExternalRunBelowThresholdIsExternal) {
  TestResult r;
  r.scenario = Scenario::kExternal;
  r.access_capacity_bps = 20e6;
  features::FlowFeatures f;
  f.slow_start_throughput_bps = 5e6;
  r.features = f;
  const auto label = label_test(r, 0.8);
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(*label, CongestionClass::kExternal);
}

TEST(Labeler, InconsistentRunsFiltered) {
  TestResult r;
  r.access_capacity_bps = 20e6;
  features::FlowFeatures f;

  // External-scenario run that reached capacity anyway: filtered.
  r.scenario = Scenario::kExternal;
  f.slow_start_throughput_bps = 19e6;
  r.features = f;
  EXPECT_FALSE(label_test(r, 0.8).has_value());

  // Self-scenario run that fell short: filtered.
  r.scenario = Scenario::kSelfInduced;
  f.slow_start_throughput_bps = 5e6;
  r.features = f;
  EXPECT_FALSE(label_test(r, 0.8).has_value());
}

TEST(Labeler, MissingFeaturesFiltered) {
  TestResult r;
  r.scenario = Scenario::kSelfInduced;
  r.access_capacity_bps = 20e6;
  EXPECT_FALSE(label_test(r, 0.8).has_value());
}

TEST(Labeler, ThresholdBoundaryInclusive) {
  EXPECT_TRUE(reached_capacity(16e6, 20e6, 0.8));
  EXPECT_FALSE(reached_capacity(15.9e6, 20e6, 0.8));
}

}  // namespace
}  // namespace ccsig::testbed

#include "obs/flow_telemetry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/time.h"
#include "testbed/experiment.h"

namespace ccsig::obs {
namespace {

FlowSample at(sim::Time t, FlowEvent e = FlowEvent::kSample,
              std::uint64_t cwnd = 1000) {
  FlowSample s;
  s.at = t;
  s.event = e;
  s.cwnd_bytes = cwnd;
  return s;
}

TEST(FlowTelemetryRecorder, RecordsInOrder) {
  FlowTelemetryRecorder rec;
  rec.record(at(1 * sim::kMillisecond));
  rec.record(at(2 * sim::kMillisecond));
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.recorded(), 2u);
  const auto samples = rec.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].at, 1 * sim::kMillisecond);
  EXPECT_EQ(samples[1].at, 2 * sim::kMillisecond);
}

TEST(FlowTelemetryRecorder, RingOverwritesOldest) {
  FlowTelemetryConfig cfg;
  cfg.capacity = 4;
  FlowTelemetryRecorder rec(cfg);
  for (int i = 0; i < 10; ++i) rec.record(at(i * sim::kMillisecond));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);
  const auto samples = rec.samples();
  ASSERT_EQ(samples.size(), 4u);
  // Oldest retained is sample 6; chronological order preserved.
  EXPECT_EQ(samples[0].at, 6 * sim::kMillisecond);
  EXPECT_EQ(samples[3].at, 9 * sim::kMillisecond);
}

TEST(FlowTelemetryRecorder, ZeroCapacityRejected) {
  FlowTelemetryConfig cfg;
  cfg.capacity = 0;
  EXPECT_THROW(FlowTelemetryRecorder rec(cfg), std::runtime_error);
}

TEST(FlowTelemetryRecorder, MinSampleGapThinsOnlyPeriodicSamples) {
  FlowTelemetryConfig cfg;
  cfg.min_sample_gap = 10 * sim::kMillisecond;
  FlowTelemetryRecorder rec(cfg);
  rec.record(at(0));                                        // kept
  rec.record(at(5 * sim::kMillisecond));                    // thinned
  rec.record(at(6 * sim::kMillisecond,
                FlowEvent::kFastRetransmit));               // event: kept
  rec.record(at(7 * sim::kMillisecond, FlowEvent::kTimeout));  // kept
  rec.record(at(10 * sim::kMillisecond));                   // kept (gap met)
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.thinned(), 1u);
}

TEST(FlowTelemetryRecorder, ClearResetsEverything) {
  FlowTelemetryRecorder rec;
  rec.record(at(1));
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.samples().empty());
}

TEST(FlowTelemetryRecorder, CsvHasHeaderAndRows) {
  FlowTelemetryRecorder rec;
  FlowSample s = at(sim::from_seconds(1.5), FlowEvent::kFastRetransmit, 2896);
  s.ssthresh_bytes = 1448;
  s.pipe_bytes = 1000;
  s.srtt = sim::from_millis(20);
  s.retransmits = 3;
  rec.record(s);
  const std::string csv = rec.to_csv();
  EXPECT_EQ(csv.find("time_s,event,cwnd_bytes,ssthresh_bytes,pipe_bytes,"
                     "srtt_s,retransmits\n"),
            0u);
  EXPECT_NE(csv.find("1.5,fast_retransmit,2896,1448,1000,0.02"),
            std::string::npos);
}

TEST(FlowTelemetryRecorder, JsonCarriesRingAccounting) {
  FlowTelemetryConfig cfg;
  cfg.capacity = 2;
  FlowTelemetryRecorder rec(cfg);
  for (int i = 0; i < 3; ++i) rec.record(at(i));
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"recorded\":3"), std::string::npos);
  EXPECT_NE(json.find("\"overwritten\":1"), std::string::npos);
  EXPECT_NE(json.find("\"event\":\"sample\""), std::string::npos);
}

TEST(FlowEventName, AllEventsNamed) {
  EXPECT_STREQ(flow_event_name(FlowEvent::kSample), "sample");
  EXPECT_STREQ(flow_event_name(FlowEvent::kFastRetransmit), "fast_retransmit");
  EXPECT_STREQ(flow_event_name(FlowEvent::kTimeout), "timeout");
  EXPECT_STREQ(flow_event_name(FlowEvent::kRecoveryExit), "recovery_exit");
}

// --- integration: recorder attached to a real testbed flow ---------------

testbed::TestbedConfig short_run() {
  testbed::TestbedConfig cfg;
  cfg.test_duration = sim::from_seconds(3);
  cfg.warmup = sim::from_seconds(1);
  cfg.seed = 11;
  return cfg;
}

TEST(FlowTelemetryIntegration, TestbedFlowProducesSamples) {
  testbed::TestbedConfig cfg = short_run();
  FlowTelemetryRecorder rec;
  cfg.telemetry = &rec;
  const auto result = testbed::run_testbed_experiment(cfg);
  EXPECT_GT(rec.size(), 0u);
  // Every ACK on the test flow samples the sender, so telemetry should be
  // at least as dense as the slow-start RTT series features are built on.
  EXPECT_GT(rec.recorded(), 100u);
  const auto samples = rec.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i - 1].at, samples[i].at) << "telemetry out of order";
  }
  // Self-induced scenario overruns the access buffer: the flow must have
  // seen at least one recovery entry.
  bool saw_loss_event = false;
  for (const auto& s : samples) {
    if (s.event != FlowEvent::kSample) saw_loss_event = true;
  }
  EXPECT_TRUE(saw_loss_event);
  (void)result;
}

TEST(FlowTelemetryIntegration, AttachingRecorderDoesNotPerturbResults) {
  const auto bare = testbed::run_testbed_experiment(short_run());

  testbed::TestbedConfig cfg = short_run();
  FlowTelemetryRecorder rec;
  cfg.telemetry = &rec;
  const auto observed = testbed::run_testbed_experiment(cfg);

  EXPECT_EQ(bare.receiver_throughput_bps, observed.receiver_throughput_bps);
  EXPECT_EQ(bare.web100.segments_sent, observed.web100.segments_sent);
  EXPECT_EQ(bare.web100.retransmits, observed.web100.retransmits);
  ASSERT_EQ(bare.features.has_value(), observed.features.has_value());
  if (bare.features) {
    EXPECT_EQ(bare.features->norm_diff, observed.features->norm_diff);
    EXPECT_EQ(bare.features->cov, observed.features->cov);
  }
}

}  // namespace
}  // namespace ccsig::obs

#include "testbed/sweep.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>

namespace ccsig::testbed {
namespace {

SweepSample sample(double ss_tput, double capacity, int scenario,
                   double nd = 0.5, double cov = 0.2) {
  SweepSample s;
  s.norm_diff = nd;
  s.cov = cov;
  s.rtt_slope = 0.1;
  s.rtt_iqr = 0.2;
  s.slow_start_tput_bps = ss_tput;
  s.access_capacity_bps = capacity;
  s.scenario = scenario;
  s.access_rate_mbps = capacity / 1e6;
  s.access_latency_ms = 20;
  s.access_loss = 0.0002;
  s.access_buffer_ms = 100;
  return s;
}

TEST(LabelSample, ConsistentRunsLabeled) {
  EXPECT_EQ(label_sample(sample(18e6, 20e6, 1), 0.8), 1);
  EXPECT_EQ(label_sample(sample(4e6, 20e6, 0), 0.8), 0);
}

TEST(LabelSample, InconsistentRunsFiltered) {
  EXPECT_EQ(label_sample(sample(18e6, 20e6, 0), 0.8), -1);
  EXPECT_EQ(label_sample(sample(4e6, 20e6, 1), 0.8), -1);
}

TEST(LabelSample, ThresholdMatters) {
  const SweepSample s = sample(15e6, 20e6, 1);  // 75% of capacity
  EXPECT_EQ(label_sample(s, 0.7), 1);
  EXPECT_EQ(label_sample(s, 0.8), -1);
}

TEST(MakeDataset, TwoFeatureRows) {
  std::vector<SweepSample> samples = {
      sample(18e6, 20e6, 1, 0.8, 0.4),
      sample(4e6, 20e6, 0, 0.2, 0.05),
      sample(18e6, 20e6, 0),  // filtered
  };
  const ml::Dataset d = make_dataset(samples, 0.8);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.feature_names()[0], "norm_diff");
  EXPECT_EQ(d.row(0)[0], 0.8);
  EXPECT_EQ(d.label(0), 1);
  EXPECT_EQ(d.label(1), 0);
}

TEST(MakeDataset, ExtendedFeaturesAddColumns) {
  std::vector<SweepSample> samples = {sample(18e6, 20e6, 1)};
  const ml::Dataset d = make_dataset(samples, 0.8, /*extended=*/true);
  EXPECT_EQ(d.num_features(), 4u);
  EXPECT_EQ(d.feature_names()[2], "rtt_slope");
  EXPECT_EQ(d.row(0)[3], 0.2);
}

TEST(SweepCsv, RoundTripPreservesEverything) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ccsig_sweep_rt.csv").string();
  std::vector<SweepSample> samples = {
      sample(18.25e6, 20e6, 1, 0.812345, 0.4321),
      sample(4.5e6, 50e6, 0, 0.1, 0.02),
  };
  save_samples_csv(path, samples);
  const auto loaded = load_samples_csv(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].norm_diff, samples[i].norm_diff);
    EXPECT_DOUBLE_EQ(loaded[i].cov, samples[i].cov);
    EXPECT_DOUBLE_EQ(loaded[i].slow_start_tput_bps,
                     samples[i].slow_start_tput_bps);
    EXPECT_EQ(loaded[i].scenario, samples[i].scenario);
    EXPECT_DOUBLE_EQ(loaded[i].access_buffer_ms, samples[i].access_buffer_ms);
  }
}

TEST(SweepCsv, RejectsUnknownHeader) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ccsig_sweep_bad.csv")
          .string();
  {
    std::ofstream out(path);
    out << "something,else\n1,2\n";
  }
  EXPECT_THROW(load_samples_csv(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SweepCsv, MissingFileThrows) {
  EXPECT_THROW(load_samples_csv("/no/such/file.csv"), std::runtime_error);
}

TEST(SweepCsv, FingerprintRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ccsig_sweep_fp.csv").string();
  const std::vector<SweepSample> samples = {sample(18e6, 20e6, 1)};
  SweepOptions opt;
  const std::string fp = sweep_fingerprint(opt);
  save_samples_csv(path, samples, fp);
  std::string loaded_fp;
  const auto loaded = load_samples_csv(path, &loaded_fp);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded_fp, fp);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].norm_diff, samples[0].norm_diff);
}

TEST(SweepFingerprint, SensitiveToContentOptionsOnly) {
  SweepOptions a;
  SweepOptions b = a;
  EXPECT_EQ(sweep_fingerprint(a), sweep_fingerprint(b));
  b.jobs = 16;  // execution knobs must not invalidate caches
  EXPECT_EQ(sweep_fingerprint(a), sweep_fingerprint(b));
  b.reps = a.reps + 1;
  EXPECT_NE(sweep_fingerprint(a), sweep_fingerprint(b));
  b = a;
  b.congestion_control = "cubic";
  EXPECT_NE(sweep_fingerprint(a), sweep_fingerprint(b));
  b = a;
  b.test_duration = a.test_duration * 2;
  EXPECT_NE(sweep_fingerprint(a), sweep_fingerprint(b));
  b = a;
  b.scale = a.scale * 2;
  EXPECT_NE(sweep_fingerprint(a), sweep_fingerprint(b));
}

// An empty parameter grid makes run_sweep a no-op, which lets the cache
// logic be tested without paying for simulations: a cached file that the
// current options could not have produced (it has rows) is the witness
// for "loaded from cache" vs "regenerated".
SweepOptions empty_grid_options(std::uint64_t seed) {
  SweepOptions opt;
  opt.access_rates_mbps.clear();
  opt.seed = seed;
  return opt;
}

TEST(LoadOrRunSweep, MatchingFingerprintLoadsCache) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ccsig_cache_match.csv")
          .string();
  const SweepOptions opt = empty_grid_options(1);
  save_samples_csv(path, {sample(18e6, 20e6, 1)}, sweep_fingerprint(opt));
  const auto got = load_or_run_sweep(path, opt);
  std::filesystem::remove(path);
  EXPECT_EQ(got.size(), 1u);  // cache hit; a real run would yield 0 samples
}

TEST(LoadOrRunSweep, LegacyCacheWithoutFingerprintTrusted) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ccsig_cache_legacy.csv")
          .string();
  save_samples_csv(path, {sample(18e6, 20e6, 1)});  // no fingerprint line
  const auto got = load_or_run_sweep(path, empty_grid_options(1));
  std::filesystem::remove(path);
  EXPECT_EQ(got.size(), 1u);
}

TEST(LoadOrRunSweep, StaleFingerprintRegenerates) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ccsig_cache_stale.csv")
          .string();
  save_samples_csv(path, {sample(18e6, 20e6, 1)},
                   sweep_fingerprint(empty_grid_options(1)));
  const SweepOptions changed = empty_grid_options(2);  // different seed
  const auto got = load_or_run_sweep(path, changed);
  EXPECT_TRUE(got.empty());  // regenerated: the empty grid produced nothing
  std::string fp;
  load_samples_csv(path, &fp);
  std::filesystem::remove(path);
  EXPECT_EQ(fp, sweep_fingerprint(changed));  // cache rewritten with new fp
}

TEST(LoadOrRunSweep, RegenerationWritesMetricsSidecar) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ccsig_cache_obs.csv")
          .string();
  const std::string sidecar = path + ".metrics.json";
  std::filesystem::remove(path);
  std::filesystem::remove(sidecar);
  const auto got = load_or_run_sweep(path, empty_grid_options(9));
  EXPECT_TRUE(got.empty());
  ASSERT_TRUE(std::filesystem::exists(sidecar));
  std::ifstream in(sidecar);
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"fingerprint\":"), std::string::npos);
  EXPECT_NE(json.find("\"campaign\":{\"total_slots\":0"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{\"counters\":"), std::string::npos);
  std::filesystem::remove(path);
  std::filesystem::remove(sidecar);
}

TEST(RunSweep, TinySweepProducesLabeledSamples) {
  // One configuration, one reach, both scenarios — a smoke-level check
  // that the full machinery holds together.
  SweepOptions opt;
  opt.access_rates_mbps = {20};
  opt.access_latencies_ms = {20};
  opt.access_losses = {0.0002};
  opt.access_buffers_ms = {100};
  opt.reps = 1;
  opt.scale = 1.0;
  opt.test_duration = sim::from_seconds(3);
  opt.warmup = sim::from_seconds(1.5);
  opt.seed = 9;
  std::size_t progress_calls = 0;
  opt.progress = [&](std::size_t done, std::size_t total) {
    ++progress_calls;
    EXPECT_LE(done, total);
  };
  const auto samples = run_sweep(opt);
  EXPECT_EQ(progress_calls, 2u);  // 1 config x 2 scenarios x 1 rep
  EXPECT_LE(samples.size(), 2u);
  EXPECT_GE(samples.size(), 1u);
}

}  // namespace
}  // namespace ccsig::testbed

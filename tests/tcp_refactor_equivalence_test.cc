// Differential test pinning the congestion-control refactor.
//
// The CC hook-interface refactor (DESIGN.md §15) must not change a single
// byte of simulated output for the pre-existing modules. This suite renders
// a randomized-but-deterministic grid of transfers, testbed TestResults
// (including pretrained-classifier verdicts), a flow-telemetry CSV, and a
// small sweep CSV into canonical precision-17 text and compares them to
// goldens committed *before* the refactor. It also re-derives the
// fingerprints embedded in the committed bench_cache CSVs from the same
// options bench_common.h uses, so a silent fingerprint change (which would
// invalidate every cached campaign) fails here instead of in a bench run.
//
// Regenerating goldens (only legitimate when simulator semantics change on
// purpose): CCSIG_UPDATE_GOLDENS=1 ./tcp_refactor_equivalence_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "mlab/dispute2014.h"
#include "mlab/tslp2017.h"
#include "obs/flow_telemetry.h"
#include "test_helpers.h"
#include "testbed/experiment.h"
#include "testbed/sweep.h"

#ifndef CCSIG_GOLDEN_DIR
#error "CCSIG_GOLDEN_DIR must be defined (see tests/CMakeLists.txt)"
#endif
#ifndef CCSIG_REPO_DIR
#error "CCSIG_REPO_DIR must be defined (see tests/CMakeLists.txt)"
#endif

namespace ccsig {
namespace {

bool update_goldens() {
  const char* env = std::getenv("CCSIG_UPDATE_GOLDENS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string golden_path(const std::string& name) {
  return std::string(CCSIG_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Compares `actual` against the committed golden, or rewrites the golden
/// in update mode. Byte comparison: a one-ULP drift anywhere fails.
void expect_matches_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (update_goldens()) {
    std::filesystem::create_directories(CCSIG_GOLDEN_DIR);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed writing golden " << path;
    return;
  }
  const std::string expected = read_file(path);
  // EXPECT_EQ on multi-KB strings prints an unreadable diff; locate the
  // first divergent line instead.
  if (actual == expected) return;
  std::istringstream got(actual), want(expected);
  std::string got_line, want_line;
  int line = 0;
  while (true) {
    ++line;
    const bool g = static_cast<bool>(std::getline(got, got_line));
    const bool w = static_cast<bool>(std::getline(want, want_line));
    if (!g && !w) break;
    if (got_line != want_line || g != w) {
      FAIL() << name << " diverges from golden at line " << line
             << "\n  golden: " << (w ? want_line : "<eof>")
             << "\n  actual: " << (g ? got_line : "<eof>");
    }
  }
  FAIL() << name << " differs from golden (sizes " << actual.size() << " vs "
         << expected.size() << ")";
}

// ---------------------------------------------------------------------------
// Golden 1: a grid of finite transfers over assorted link shapes × CC × seed.
// Everything observable from the sender's Stats is rendered; any change in
// packet timing, loss recovery, or window evolution shows up here.

struct LinkShape {
  double rate_mbps, delay_ms, buffer_ms, loss;
};

std::string render_transfer_grid() {
  // Shapes chosen to cover: clean deep buffer, shallow lossy, high-BDP,
  // and fast short-RTT paths — the regimes where CC modules diverge most.
  const LinkShape shapes[] = {
      {10, 10, 25, 0.0},
      {5, 20, 50, 0.001},
      {20, 40, 100, 0.0005},
      {50, 5, 15, 0.0},
  };
  const char* ccs[] = {"reno", "cubic", "bbr"};

  std::ostringstream out;
  out.precision(17);
  out << "# transfer grid: shape x cc x seed, sender stats\n";
  int idx = 0;
  for (const LinkShape& shape : shapes) {
    for (const char* cc : ccs) {
      const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(idx);
      const std::uint64_t bytes = 200'000 + 25'000 * (idx % 5);
      testutil::TwoNodePath path(
          testutil::basic_link(shape.rate_mbps * 1e6, shape.delay_ms,
                               shape.buffer_ms, shape.loss),
          seed);
      const auto r = testutil::run_transfer(path, bytes, cc);
      const auto& s = r.source_stats;
      out << "shape=" << shape.rate_mbps << "/" << shape.delay_ms << "/"
          << shape.buffer_ms << "/" << shape.loss << " cc=" << cc
          << " seed=" << seed << " bytes=" << bytes
          << " completed=" << (r.completed ? 1 : 0)
          << " at=" << sim::to_seconds(r.completed_at)
          << " sent=" << s.bytes_sent << " acked=" << s.bytes_acked
          << " segs=" << s.segments_sent << " retx=" << s.retransmits
          << " fast=" << s.fast_retransmits << " rto=" << s.timeouts
          << " min_rtt=" << sim::to_seconds(s.min_rtt)
          << " srtt=" << sim::to_seconds(s.smoothed_rtt)
          << " cwnd=" << s.cwnd_bytes << " ssthresh=" << s.ssthresh_bytes
          << " cong_t=" << sim::to_seconds(s.time_congestion_limited)
          << " rwnd_t=" << sim::to_seconds(s.time_receiver_limited)
          << " app_t=" << sim::to_seconds(s.time_application_limited) << "\n";
      ++idx;
    }
  }
  return out.str();
}

TEST(TcpRefactorEquivalence, TransferGridMatchesGolden) {
  expect_matches_golden("transfer_grid.txt", render_transfer_grid());
}

// ---------------------------------------------------------------------------
// Golden 2: full testbed TestResults (both scenarios × pre-refactor CC
// modules), including the pretrained model's verdicts — this is the
// "pretrained-model predictions byte-identical" acceptance criterion.

std::string render_testbed_results() {
  const char* ccs[] = {"reno", "cubic", "bbr"};
  const testbed::Scenario scenarios[] = {testbed::Scenario::kSelfInduced,
                                         testbed::Scenario::kExternal};
  const auto& clf = CongestionClassifier::pretrained();

  std::ostringstream out;
  out.precision(17);
  out << "# testbed results: scenario x cc, quick config\n";
  std::uint64_t seed = 71;
  for (const testbed::Scenario scenario : scenarios) {
    for (const char* cc : ccs) {
      testbed::TestbedConfig cfg = testutil::quick_testbed_config(
          scenario, seed++);
      cfg.congestion_control = cc;
      const testbed::TestResult r = testbed::run_testbed_experiment(cfg);
      out << "scenario="
          << (scenario == testbed::Scenario::kExternal ? "external" : "self")
          << " cc=" << cc << " seed=" << seed - 1
          << " tput=" << r.receiver_throughput_bps
          << " cap=" << r.access_capacity_bps
          << " cross=" << r.cross_traffic_bytes
          << " segs=" << r.web100.segments_sent
          << " retx=" << r.web100.retransmits
          << " fast=" << r.web100.fast_retransmits
          << " rto=" << r.web100.timeouts
          << " srtt=" << sim::to_seconds(r.web100.smoothed_rtt);
      if (r.features) {
        const auto v = clf.classify(*r.features);
        out << " norm_diff=" << r.features->norm_diff
            << " cov=" << r.features->cov
            << " rtt_slope=" << r.features->rtt_slope
            << " rtt_iqr=" << r.features->rtt_iqr
            << " rtt_samples=" << r.features->rtt_samples
            << " min_rtt_ms=" << r.features->min_rtt_ms
            << " max_rtt_ms=" << r.features->max_rtt_ms
            << " ss_tput=" << r.features->slow_start_throughput_bps
            << " flow_tput=" << r.features->flow_throughput_bps
            << " verdict=" << to_string(v.verdict)
            << " confidence=" << v.confidence;
      } else {
        out << " features=unavailable";
      }
      out << "\n";
    }
  }
  return out.str();
}

TEST(TcpRefactorEquivalence, TestbedResultsMatchGolden) {
  expect_matches_golden("testbed_results.txt", render_testbed_results());
}

// ---------------------------------------------------------------------------
// Golden 3: the flow-telemetry CSV of one lossy transfer — pins the exact
// per-ACK cwnd/ssthresh/pipe sequence the refactored hooks must reproduce.

std::string render_flow_telemetry() {
  obs::FlowTelemetryRecorder telemetry;
  testutil::TwoNodePath path(testutil::basic_link(8e6, 15, 30, 0.002), 5);
  const sim::FlowKey key = path.flow_key();

  tcp::TcpSink::Config sink_cfg;
  sink_cfg.data_key = key;
  tcp::TcpSink sink(path.net.sim(), path.client, sink_cfg);

  tcp::TcpSource::Config src_cfg;
  src_cfg.key = key;
  src_cfg.bytes_to_send = 400'000;
  src_cfg.congestion_control = "cubic";
  src_cfg.telemetry = &telemetry;
  tcp::TcpSource source(path.net.sim(), path.server, src_cfg);
  source.start();
  path.net.sim().run_until(sim::from_seconds(120));
  return telemetry.to_csv();
}

TEST(TcpRefactorEquivalence, FlowTelemetryMatchesGolden) {
  expect_matches_golden("flow_telemetry.csv", render_flow_telemetry());
}

// ---------------------------------------------------------------------------
// Golden 4: a small sweep rendered through the real cache-CSV writer
// (fingerprint line included), at jobs=1 and jobs=4 — covers the sweep
// row formatter, the fingerprint, and parallel determinism in one shot.

testbed::SweepOptions small_sweep_options(int jobs) {
  testbed::SweepOptions opt;
  opt.access_rates_mbps = {10};
  opt.access_latencies_ms = {20};
  opt.access_losses = {0.0002};
  opt.access_buffers_ms = {20, 50};
  opt.reps = 1;
  opt.scale = 0.1;
  opt.test_duration = sim::from_seconds(2.0);
  opt.warmup = sim::from_seconds(1.0);
  opt.seed = 7;
  opt.jobs = jobs;
  return opt;
}

std::string render_sweep_csv(int jobs) {
  const testbed::SweepOptions opt = small_sweep_options(jobs);
  const auto samples = testbed::run_sweep(opt);
  const std::string tmp =
      (std::filesystem::temp_directory_path() / "ccsig_equiv_sweep.csv")
          .string();
  testbed::save_samples_csv(tmp, samples, testbed::sweep_fingerprint(opt));
  std::string text = read_file(tmp);
  std::filesystem::remove(tmp);
  return text;
}

TEST(TcpRefactorEquivalence, SweepRowsMatchGoldenAtAnyJobs) {
  const std::string serial = render_sweep_csv(1);
  expect_matches_golden("sweep_rows.csv", serial);
  EXPECT_EQ(serial, render_sweep_csv(4))
      << "sweep output depends on worker count";
}

// ---------------------------------------------------------------------------
// Fingerprint pins: the options bench_common.h reconstructs must still
// fingerprint to the exact lines embedded in the committed bench_cache
// CSVs, otherwise every cached campaign silently regenerates (and any new
// config knob that leaked into the fingerprint would do exactly that).

std::string embedded_fingerprint(const std::string& cache_file) {
  std::ifstream in(std::string(CCSIG_REPO_DIR) + "/bench_cache/" + cache_file);
  EXPECT_TRUE(in.is_open()) << "missing bench_cache/" << cache_file;
  std::string line;
  std::getline(in, line);
  const std::string prefix = "# options: ";
  EXPECT_EQ(line.rfind(prefix, 0), 0u) << cache_file << ": " << line;
  return line.substr(prefix.size());
}

TEST(TcpRefactorEquivalence, SweepCacheFingerprintUnchanged) {
  // bench_common.h standard_sweep at default reps (3).
  testbed::SweepOptions sweep;
  sweep.scale = 1.0;
  sweep.reps = 3;
  sweep.test_duration = sim::from_seconds(5.0);
  sweep.warmup = sim::from_seconds(2.5);
  EXPECT_EQ(testbed::sweep_fingerprint(sweep),
            embedded_fingerprint("testbed_sweep_r3.csv"));
}

TEST(TcpRefactorEquivalence, Dispute2014CacheFingerprintUnchanged) {
  // bench_common.h standard_dispute2014 at default reps (1, even hours).
  mlab::Dispute2014Options campaign;
  campaign.tests_per_cell = 1;
  campaign.ndt_duration = sim::from_seconds(6.0);
  campaign.hours = {0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22};
  EXPECT_EQ(mlab::dispute_fingerprint(campaign),
            embedded_fingerprint("dispute2014_t1.csv"));
}

TEST(TcpRefactorEquivalence, Tslp2017CacheFingerprintsUnchanged) {
  // bench_common.h standard_tslp2017 at 4 and 6 days.
  for (const int days : {4, 6}) {
    mlab::Tslp2017Options campaign;
    campaign.days = days;
    campaign.ndt_duration = sim::from_seconds(6.0);
    campaign.episode_probability = 0.4;
    EXPECT_EQ(mlab::tslp_fingerprint(campaign),
              embedded_fingerprint("tslp2017_d" + std::to_string(days) +
                                   ".csv"));
  }
}

}  // namespace
}  // namespace ccsig

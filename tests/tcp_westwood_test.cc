// Behavioral tests for TCP Westwood+: the loss response must come from
// the bandwidth estimate (ssthresh = estimated BDP), not Reno's blind
// cwnd/2 — that is the variant's entire point, and the property the
// paper's testbed would see as "loss without the usual window collapse"
// on random-loss links.
#include "tcp/westwood.h"

#include <gtest/gtest.h>

#include <sstream>

#include "tcp/congestion_control.h"
#include "test_helpers.h"
#include "testbed/sweep.h"

namespace ccsig::tcp {
namespace {

using sim::kMillisecond;

constexpr std::uint32_t kMss = 1448;

/// Steady ACK clock: `acks` single-MSS ACKs, 2 ms apart, fixed RTT.
/// Gives the filter a stable ~5.8 Mbps delivery-rate signal.
sim::Time feed_steady(WestwoodCongestionControl& cc, int acks,
                      sim::Duration rtt, sim::Time now = 0) {
  for (int i = 0; i < acks; ++i) {
    now += 2 * kMillisecond;
    cc.on_ack(kMss, rtt, now);
  }
  return now;
}

TEST(Westwood, EstimatesDeliveryRateFromAcks) {
  WestwoodCongestionControl cc(kMss);
  EXPECT_EQ(cc.bandwidth_estimate_bps(), 0.0);
  feed_steady(cc, 100, 10 * kMillisecond);
  // 1448 bytes every 2 ms = 5.792 Mbps. The very first filter sample runs
  // slightly hot (the opening ACK's bytes land in a shorter effective
  // interval) and the 7/8 low-pass decays that bias slowly, so after 100
  // ACKs the estimate sits within ~2% above the true rate.
  EXPECT_NEAR(cc.bandwidth_estimate_bps(), 1448 * 8.0 / 0.002, 0.15e6);
  EXPECT_EQ(cc.min_rtt(), 10 * kMillisecond);
}

TEST(Westwood, SsthreshFromBandwidthEstimateNotHalfWindow) {
  WestwoodCongestionControl cc(kMss);
  const sim::Time now = feed_steady(cc, 200, 10 * kMillisecond);
  // Slow start has pushed the window far past the path's actual BDP
  // (~5.8 Mbps x 10 ms = ~7.2 KB); a Reno-style response would still
  // leave half of that inflated window.
  const std::uint64_t flight = cc.cwnd_bytes();
  ASSERT_GT(flight, 100ull * kMss);
  cc.on_loss(LossKind::kFastRetransmit, flight, now);

  const std::uint64_t expected = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(cc.bandwidth_estimate_bps() / 8.0 *
                                 sim::to_seconds(cc.min_rtt())),
      2ull * kMss);
  EXPECT_EQ(cc.ssthresh_bytes(), expected);
  EXPECT_NE(cc.ssthresh_bytes(), flight / 2);
  EXPECT_LT(cc.ssthresh_bytes(), flight / 4);  // BDP, not a blind halving
  EXPECT_EQ(cc.cwnd_bytes(), cc.ssthresh_bytes());
}

TEST(Westwood, FallsBackToHalfWindowBeforeFirstEstimate) {
  WestwoodCongestionControl cc(kMss);
  cc.on_loss(LossKind::kFastRetransmit, 100ull * kMss, 0);
  EXPECT_EQ(cc.ssthresh_bytes(), 50ull * kMss);
}

TEST(Westwood, TimeoutCollapsesWindowButKeepsEstimate) {
  WestwoodCongestionControl cc(kMss);
  const sim::Time now = feed_steady(cc, 200, 10 * kMillisecond);
  const double bwe = cc.bandwidth_estimate_bps();
  cc.on_loss(LossKind::kTimeout, cc.cwnd_bytes(), now);
  EXPECT_EQ(cc.cwnd_bytes(), kMss);  // RTO still restarts from one segment
  EXPECT_EQ(cc.bandwidth_estimate_bps(), bwe);  // the estimate survives
  EXPECT_GE(cc.ssthresh_bytes(), 2ull * kMss);
}

TEST(Westwood, RandomLossTransferOutpacesReno) {
  // 10 Mbps / 40 ms one-way (BDP ~100 KB) with a shallow 10 ms buffer and
  // 1% *random* (non-congestive) loss: every drop pushes Reno to half of
  // an already-small flight and it climbs back one MSS per 80 ms round,
  // while Westwood+ resets ssthresh to the estimated BDP the path still
  // supports — the faster-recovery claim, end to end. (A deep buffer would
  // hide the difference: Reno's flight/2 is generous when the queue lets
  // the window grow far past the BDP. The transfer must also be long
  // enough for the 7/8 low-pass bandwidth filter to converge — over the
  // first few hundred KB the estimate still understates the path and
  // Westwood+ recovers no faster than Reno.)
  const std::uint64_t bytes = 2'000'000;
  testutil::TwoNodePath ww_path(testutil::basic_link(10e6, 40, 10, 0.01),
                                13);
  const auto ww = testutil::run_transfer(ww_path, bytes, "westwood");
  testutil::TwoNodePath reno_path(testutil::basic_link(10e6, 40, 10, 0.01),
                                  13);
  const auto reno = testutil::run_transfer(reno_path, bytes, "reno");

  ASSERT_TRUE(ww.completed);
  ASSERT_TRUE(reno.completed);
  EXPECT_LT(ww.completed_at, reno.completed_at);
}

TEST(Westwood, TransferIsDeterministic) {
  const auto once = [] {
    testutil::TwoNodePath path(testutil::basic_link(10e6, 15, 100, 0.002), 5);
    const auto r = testutil::run_transfer(path, 500'000, "westwood+");
    std::ostringstream out;
    out.precision(17);
    out << r.completed << ' ' << r.completed_at << ' '
        << r.source_stats.bytes_acked << ' ' << r.source_stats.segments_sent
        << ' ' << r.source_stats.retransmits << ' '
        << r.source_stats.cwnd_bytes << ' ' << r.source_stats.smoothed_rtt;
    return out.str();
  };
  EXPECT_EQ(once(), once());
}

TEST(Westwood, SweepRowsIdenticalAtAnyJobs) {
  testbed::SweepOptions opt;
  opt.access_rates_mbps = {10};
  opt.access_latencies_ms = {20};
  // High random loss: feature extraction needs a retransmission to bound
  // the slow-start phase, and Westwood+'s BDP-pinned recovery keeps the
  // queue shallow enough that only random drops reliably provide one.
  opt.access_losses = {0.02};
  opt.access_buffers_ms = {20, 50};
  opt.reps = 1;
  // Full-scale links: the 0.1-scale grid shrinks the access link to 1 Mbps,
  // where slow start ends within a handful of RTT samples and feature
  // extraction refuses every flow (for any sender — the refactor
  // equivalence golden for that grid is legitimately empty).
  opt.scale = 1.0;
  opt.test_duration = sim::from_seconds(2);
  opt.warmup = sim::from_seconds(1);
  opt.congestion_control = "westwood";
  opt.seed = 17;

  opt.jobs = 1;
  const auto serial = testbed::run_sweep(opt);
  opt.jobs = 4;
  const auto parallel = testbed::run_sweep(opt);

  const auto render = [](const std::vector<testbed::SweepSample>& rows) {
    std::ostringstream out;
    out.precision(17);
    for (const auto& s : rows) {
      out << s.norm_diff << ',' << s.cov << ',' << s.rtt_slope << ','
          << s.rtt_iqr << ',' << s.slow_start_tput_bps << ','
          << s.flow_tput_bps << ',' << s.scenario << '\n';
    }
    return out.str();
  };
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(render(serial), render(parallel));
}

}  // namespace
}  // namespace ccsig::tcp

// Whole-pipeline integration: controlled testbed experiment -> server-side
// capture -> pcap round trip -> feature extraction -> pretrained classifier.
// This is the exact deployment pipeline the paper proposes, end to end.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/analyzer.h"
#include "pcap/capture.h"
#include "pcap/pcap_file.h"
#include "test_helpers.h"
#include "testbed/experiment.h"

namespace ccsig {
namespace {

testbed::TestbedConfig quick(testbed::Scenario scenario, std::uint64_t seed) {
  return testutil::quick_testbed_config(scenario, seed);
}

TEST(IntegrationPipeline, SelfInducedVerdictFromLiveTrace) {
  testbed::TestbedExperiment exp(quick(testbed::Scenario::kSelfInduced, 42));
  exp.run();
  FlowAnalyzer analyzer;
  const auto reports = analyzer.analyze(exp.server_trace());
  ASSERT_FALSE(reports.empty());
  ASSERT_TRUE(reports[0].classification.has_value());
  EXPECT_EQ(reports[0].classification->verdict,
            Verdict::kSelfInducedCongestion);
}

TEST(IntegrationPipeline, ExternalVerdictFromLiveTrace) {
  testbed::TestbedExperiment exp(quick(testbed::Scenario::kExternal, 43));
  exp.run();
  FlowAnalyzer analyzer;
  const auto reports = analyzer.analyze(exp.server_trace());
  ASSERT_FALSE(reports.empty());
  if (reports[0].classification) {
    EXPECT_EQ(reports[0].classification->verdict,
              Verdict::kExternalCongestion);
  }
}

TEST(IntegrationPipeline, PcapRoundTripPreservesVerdict) {
  const std::string pcap_path =
      (std::filesystem::temp_directory_path() / "ccsig_pipeline.pcap")
          .string();
  testbed::TestbedExperiment exp(quick(testbed::Scenario::kSelfInduced, 44));
  // Mirror the live tap into a pcap file, like running tcpdump on Server 1.
  pcap::PcapCaptureTap tap(pcap_path);
  exp.network().node("server1")->add_tap(&tap);
  exp.run();
  tap.flush();

  FlowAnalyzer analyzer;
  const auto live = analyzer.analyze(exp.server_trace());
  const auto from_file = analyzer.analyze_pcap(pcap_path);
  std::filesystem::remove(pcap_path);

  ASSERT_FALSE(live.empty());
  ASSERT_EQ(from_file.size(), live.size());
  ASSERT_TRUE(live[0].classification.has_value());
  ASSERT_TRUE(from_file[0].classification.has_value());
  EXPECT_EQ(from_file[0].classification->verdict,
            live[0].classification->verdict);
  EXPECT_NEAR(from_file[0].features->norm_diff, live[0].features->norm_diff,
              0.02);
  EXPECT_NEAR(from_file[0].features->cov, live[0].features->cov, 0.02);
}

}  // namespace
}  // namespace ccsig

#include "runtime/parallel_map.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/progress.h"
#include "runtime/thread_pool.h"

namespace ccsig::runtime {
namespace {

TEST(DefaultJobs, AtLeastOne) { EXPECT_GE(default_jobs(), 1u); }

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 50 * (batch + 1));
  }
}

TEST(ThreadPool, TasksMaySubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&] {
      ++count;
      pool.submit([&count] { ++count; });
    });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 40);
}

TEST(ParallelMap, PreservesInputOrder) {
  std::vector<int> items(257);
  for (std::size_t i = 0; i < items.size(); ++i) items[i] = static_cast<int>(i);
  const auto doubled = parallel_map(
      items,
      [](const int& v) {
        if (v % 7 == 0) {  // stagger completion times
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        return v * 2;
      },
      8);
  ASSERT_EQ(doubled.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(doubled[i], static_cast<int>(i) * 2);
  }
}

TEST(ParallelMap, JobsOneRunsSeriallyOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> items = {1, 2, 3, 4, 5};
  std::vector<int> seen;
  const auto out = parallel_map(
      items,
      [&](const int& v) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        seen.push_back(v);  // safe: serial fallback, no pool
        return v;
      },
      1);
  EXPECT_EQ(seen, items);
  EXPECT_EQ(out, items);
}

TEST(ParallelMap, WorkerExceptionRethrownAtCallSite) {
  std::vector<int> items(64);
  for (std::size_t i = 0; i < items.size(); ++i) items[i] = static_cast<int>(i);
  const auto boom = [](const int& v) {
    if (v == 41) throw std::runtime_error("boom at 41");
    return v;
  };
  try {
    parallel_map(items, boom, 4);
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 41");
  }
  // The serial fallback propagates too.
  EXPECT_THROW(parallel_map(items, boom, 1), std::runtime_error);
}

TEST(ParallelMap, ProgressCounterMonotonicAndExact) {
  std::vector<int> items(100);
  std::vector<std::size_t> reported;
  ProgressCounter progress(items.size(),
                           [&](std::size_t done, std::size_t total) {
                             EXPECT_EQ(total, items.size());
                             reported.push_back(done);  // serialized by tick()
                           });
  parallel_map(items, [](const int& v) { return v; }, 6, &progress);
  ASSERT_EQ(reported.size(), items.size());
  for (std::size_t i = 0; i < reported.size(); ++i) {
    EXPECT_EQ(reported[i], i + 1);  // exactly 1..N, strictly increasing
  }
  EXPECT_EQ(progress.done(), items.size());
  EXPECT_EQ(progress.total(), items.size());
}

TEST(ParallelMap, EmptyAndSingleItemInputs) {
  const std::vector<int> empty;
  EXPECT_TRUE(parallel_map(empty, [](const int& v) { return v; }, 4).empty());
  const std::vector<int> one = {7};
  const auto out = parallel_map(one, [](const int& v) { return v + 1; }, 4);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 8);
}

TEST(ParallelMap, ZeroJobsMeansHardwareDefault) {
  std::vector<int> items = {1, 2, 3};
  const auto out = parallel_map(items, [](const int& v) { return v * v; }, 0);
  EXPECT_EQ(out, (std::vector<int>{1, 4, 9}));
}

}  // namespace
}  // namespace ccsig::runtime

#include "analysis/flow_trace.h"

#include <gtest/gtest.h>

namespace ccsig::analysis {
namespace {

TraceRecord data_rec(sim::Time t, std::uint64_t seq, std::uint32_t len,
                     sim::FlowKey key = {1, 2, 10, 20}) {
  TraceRecord r;
  r.time = t;
  r.key = key;
  r.seq = seq;
  r.payload_bytes = len;
  r.flags.ack = true;
  return r;
}

TraceRecord ack_rec(sim::Time t, std::uint64_t ack,
                    sim::FlowKey key = {2, 1, 20, 10}) {
  TraceRecord r;
  r.time = t;
  r.key = key;
  r.seq = 1;
  r.ack = ack;
  r.flags.ack = true;
  return r;
}

TEST(SplitFlows, SeparatesDataAndAckDirections) {
  Trace trace;
  trace.push_back(data_rec(1, 1, 100));
  trace.push_back(ack_rec(2, 101));
  trace.push_back(data_rec(3, 101, 100));
  const auto flows = split_flows(trace);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].data.size(), 2u);
  EXPECT_EQ(flows[0].acks.size(), 1u);
  EXPECT_EQ(flows[0].data_key.src_addr, 1u);  // payload direction
  EXPECT_EQ(flows[0].data_key.dst_addr, 2u);
}

TEST(SplitFlows, PayloadDirectionWinsRegardlessOfAddressOrder) {
  // Data flows from the *higher* address; the canonicalization must still
  // pick the payload-carrying side as data_key.
  Trace trace;
  trace.push_back(data_rec(1, 1, 500, sim::FlowKey{9, 3, 80, 1000}));
  trace.push_back(ack_rec(2, 501, sim::FlowKey{3, 9, 1000, 80}));
  const auto flows = split_flows(trace);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].data_key.src_addr, 9u);
}

TEST(SplitFlows, MultipleConnectionsSplit) {
  Trace trace;
  trace.push_back(data_rec(1, 1, 100, sim::FlowKey{1, 2, 10, 20}));
  trace.push_back(data_rec(2, 1, 100, sim::FlowKey{1, 2, 11, 21}));
  trace.push_back(data_rec(3, 1, 100, sim::FlowKey{5, 6, 10, 20}));
  const auto flows = split_flows(trace);
  EXPECT_EQ(flows.size(), 3u);
}

TEST(SplitFlows, DropsPayloadlessConnections) {
  Trace trace;
  trace.push_back(ack_rec(1, 1));
  EXPECT_TRUE(split_flows(trace).empty());
}

TEST(SplitFlows, OrderedByStartTime) {
  Trace trace;
  trace.push_back(data_rec(100, 1, 10, sim::FlowKey{1, 2, 10, 20}));
  trace.push_back(data_rec(5, 1, 10, sim::FlowKey{3, 4, 10, 20}));
  const auto flows = split_flows(trace);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].data_key.src_addr, 3u);
  EXPECT_EQ(flows[1].data_key.src_addr, 1u);
}

TEST(FlowTrace, AckedBytesFromHighestAck) {
  FlowTrace flow;
  flow.acks.push_back(ack_rec(1, 101));
  flow.acks.push_back(ack_rec(2, 501));
  flow.acks.push_back(ack_rec(3, 301));  // stale duplicate
  // Wire sequence 1 is the first payload byte, so acked payload = 500.
  EXPECT_EQ(flow.acked_bytes(), 500u);
}

TEST(FlowTrace, AckedBytesZeroWhenNoAcks) {
  FlowTrace flow;
  EXPECT_EQ(flow.acked_bytes(), 0u);
}

TEST(FlowTrace, TimesSpanBothDirections) {
  FlowTrace flow;
  flow.data.push_back(data_rec(10, 1, 100));
  flow.acks.push_back(ack_rec(25, 101));
  EXPECT_EQ(flow.start_time(), 10);
  EXPECT_EQ(flow.end_time(), 25);
  EXPECT_EQ(flow.duration(), 15);
}

TEST(ExtractFlow, FiltersExactDirection) {
  Trace trace;
  trace.push_back(data_rec(1, 1, 100, sim::FlowKey{1, 2, 10, 20}));
  trace.push_back(ack_rec(2, 101, sim::FlowKey{2, 1, 20, 10}));
  trace.push_back(data_rec(3, 1, 100, sim::FlowKey{7, 8, 9, 9}));  // other
  const FlowTrace flow = extract_flow(trace, sim::FlowKey{1, 2, 10, 20});
  EXPECT_EQ(flow.data.size(), 1u);
  EXPECT_EQ(flow.acks.size(), 1u);
}

TEST(ExtractFlow, EmptyWhenAbsent) {
  Trace trace;
  const FlowTrace flow = extract_flow(trace, sim::FlowKey{1, 2, 3, 4});
  EXPECT_TRUE(flow.data.empty());
  EXPECT_TRUE(flow.acks.empty());
}

}  // namespace
}  // namespace ccsig::analysis

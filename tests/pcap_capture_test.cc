// Capture tap + pcap round trip: simulator packets -> pcap file -> analysis
// trace, including 32-bit sequence unwrapping.
#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/from_pcap.h"
#include "pcap/capture.h"
#include "test_helpers.h"

namespace ccsig {
namespace {

class CaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("ccsig_capture_test_" + std::to_string(counter_++)))
                .string() +
            ".pcap";
  }
  void TearDown() override { std::filesystem::remove(path_); }
  static int counter_;
  std::string path_;
};

int CaptureTest::counter_ = 0;

TEST_F(CaptureTest, TransferRoundTripsThroughPcap) {
  testutil::TwoNodePath path(testutil::basic_link(10e6, 10, 100));
  pcap::PcapCaptureTap tap(path_);
  path.server->add_tap(&tap);
  const auto result = testutil::run_transfer(path, 300'000);
  ASSERT_TRUE(result.completed);
  tap.flush();
  path.server->remove_tap(&tap);

  const analysis::Trace from_pcap = analysis::trace_from_pcap(path_);
  const analysis::Trace& live = path.recorder.trace();
  ASSERT_EQ(from_pcap.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(from_pcap[i].seq, live[i].seq) << "record " << i;
    EXPECT_EQ(from_pcap[i].ack, live[i].ack) << "record " << i;
    EXPECT_EQ(from_pcap[i].payload_bytes, live[i].payload_bytes);
    EXPECT_EQ(from_pcap[i].key.src_port, live[i].key.src_port);
    EXPECT_EQ(from_pcap[i].flags.syn, live[i].flags.syn);
    // Classic pcap stores µs; timestamps agree to within 1 µs.
    EXPECT_NEAR(static_cast<double>(from_pcap[i].time),
                static_cast<double>(live[i].time),
                static_cast<double>(sim::kMicrosecond));
  }
}

TEST_F(CaptureTest, SequenceUnwrapAcross32BitBoundary) {
  // Hand-build records whose 32-bit sequence numbers wrap.
  std::vector<pcap::PcapRecord> records;
  sim::Packet p;
  p.key = sim::FlowKey{1, 2, 10, 20};
  p.flags.ack = true;
  p.payload_bytes = 1000;
  const std::uint64_t start = (1ull << 32) - 3000;
  for (int i = 0; i < 6; ++i) {
    p.seq = start + static_cast<std::uint64_t>(i) * 1000;  // crosses 2^32
    pcap::PcapRecord rec;
    rec.timestamp = i * sim::kMillisecond;
    const auto frame = pcap::encode_frame(p);
    rec.data.assign(frame.begin(), frame.end());
    rec.orig_len = static_cast<std::uint32_t>(frame.size() + p.payload_bytes);
    records.push_back(std::move(rec));
  }
  const analysis::Trace trace = analysis::trace_from_records(records);
  ASSERT_EQ(trace.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    // Unwrapped offsets must be monotone with the same spacing, modulo the
    // unknown epoch base (the first record anchors below 2^32).
    EXPECT_EQ(trace[static_cast<std::size_t>(i)].seq -
                  trace[0].seq,
              static_cast<std::uint64_t>(i) * 1000u);
  }
}

TEST_F(CaptureTest, NonTcpRecordsSkipped) {
  std::vector<pcap::PcapRecord> records;
  pcap::PcapRecord junk;
  junk.timestamp = 0;
  junk.data.assign(60, 0xAA);  // not a valid ethernet/IPv4/TCP frame
  junk.orig_len = 60;
  records.push_back(junk);
  EXPECT_TRUE(analysis::trace_from_records(records).empty());
}

TEST_F(CaptureTest, CapturedCountMatchesTapInvocations) {
  testutil::TwoNodePath path(testutil::basic_link(10e6, 5, 50));
  pcap::PcapCaptureTap tap(path_);
  path.server->add_tap(&tap);
  testutil::run_transfer(path, 50'000);
  path.server->remove_tap(&tap);
  tap.flush();
  EXPECT_EQ(tap.packets_captured(), path.recorder.trace().size());
}

}  // namespace
}  // namespace ccsig

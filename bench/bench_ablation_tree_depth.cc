// §3.2 ablation: tree depth. The paper evaluated depths 3–5 and found all
// accurate, settling on 4. We sweep 1–8 with 5-fold cross-validation, plus
// a random-forest reference, to show the problem saturates at tiny depth.
#include "bench_common.h"
#include "ml/cv.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/split.h"

using namespace ccsig;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Ablation — decision-tree depth",
                      "§3.2: depths 3-5 all accurate; the paper uses 4");

  const auto samples = bench::standard_sweep(opt);
  const ml::Dataset data = testbed::make_dataset(samples, 0.8);
  const auto counts = data.class_counts();
  std::printf("dataset: %zu samples (ext=%zu self=%zu)\n\n", data.size(),
              counts.size() > 0 ? counts[0] : 0,
              counts.size() > 1 ? counts[1] : 0);

  std::printf("%-8s %16s\n", "depth", "5-fold accuracy");
  for (int depth = 1; depth <= 8; ++depth) {
    // Fold fits run across opt.jobs threads; the accuracy is byte-identical
    // at any jobs value (ml::cross_validate's determinism contract).
    const auto cv = ml::cross_validate(
        data, ml::DecisionTree::Params{.max_depth = depth}, /*k=*/5,
        /*seed=*/31, opt.jobs);
    std::printf("%-8d %15.1f%%\n", depth, 100.0 * cv.accuracy);
  }

  // Random-forest reference: on a 2-feature problem a heavier model should
  // buy essentially nothing — which is itself the paper's point that the
  // simple tree suffices.
  sim::Rng rng(77);
  const auto [train, test] = ml::stratified_split(data, 0.3, rng);
  ml::RandomForest forest(
      ml::RandomForest::Params{.n_trees = 25,
                               .tree = {.max_depth = 6}},
      5);
  forest.fit(train, opt.jobs);
  const ml::ConfusionMatrix cm(test.labels(), forest.predict_all(test));
  std::printf("\nrandom forest (25 trees, depth 6): %.1f%% holdout accuracy\n",
              100.0 * cm.accuracy());
  std::printf("paper: depth 3-5 equivalent -> depth is not a sensitive "
              "hyperparameter.\n");
  return 0;
}

// Figure 3: classifier precision and recall vs the congestion-labeling
// threshold, for both classes, on the full controlled-experiment sweep.
#include "bench_common.h"
#include "ml/metrics.h"
#include "ml/split.h"

using namespace ccsig;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 3 — model precision/recall vs congestion threshold",
      "Fig. 3a/3b: testbed sweep, depth-4 tree, 70/30 split");

  const auto samples = bench::standard_sweep(opt);
  std::printf("sweep samples with features: %zu\n\n", samples.size());

  std::printf("%-10s %7s %7s %7s | %7s %7s %7s %7s\n", "threshold",
              "n", "n_ext", "n_self", "P_ext", "R_ext", "P_self", "R_self");
  for (double threshold = 0.1; threshold <= 0.951; threshold += 0.05) {
    const ml::Dataset data = testbed::make_dataset(samples, threshold);
    const auto counts = data.class_counts();
    const std::size_t n_ext = counts.size() > 0 ? counts[0] : 0;
    const std::size_t n_self = counts.size() > 1 ? counts[1] : 0;
    if (n_ext < 5 || n_self < 5) {
      std::printf("%-10.2f %7zu %7zu %7zu | (too few samples in a class)\n",
                  threshold, data.size(), n_ext, n_self);
      continue;
    }
    sim::Rng rng(1234);
    const auto [train, test] = ml::stratified_split(data, 0.3, rng);
    ml::DecisionTree tree(ml::DecisionTree::Params{.max_depth = 4});
    tree.fit(train);
    const ml::ConfusionMatrix cm(test.labels(), tree.predict_all(test));
    std::printf("%-10.2f %7zu %7zu %7zu | %7.3f %7.3f %7.3f %7.3f\n",
                threshold, data.size(), n_ext, n_self, cm.precision(0),
                cm.recall(0), cm.precision(1), cm.recall(1));
  }
  std::printf(
      "\npaper: precision/recall consistently high for thresholds in "
      "[0.6, 0.9] (\"up to 90%%\"), degrading at the extremes.\n");
  return 0;
}

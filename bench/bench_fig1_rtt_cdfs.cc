// Figure 1: CDFs of (max − min RTT) and CoV of slow-start RTT samples for
// self-induced vs external congestion, on the paper's illustrative setup
// (20 Mbps access link, 100 ms buffer, 20 ms latency, no loss, behind a
// 950 Mbps / 50 ms interconnect).
#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "testbed/experiment.h"

using namespace ccsig;

namespace {

struct ClassSamples {
  std::vector<double> max_min_rtt_ms;
  std::vector<double> cov;
};

ClassSamples collect(testbed::Scenario scenario, int reps,
                     std::uint64_t seed_base) {
  ClassSamples out;
  for (int rep = 0; rep < reps; ++rep) {
    testbed::TestbedConfig cfg;
    cfg.access_rate_mbps = 20;
    cfg.access_buffer_ms = 100;
    cfg.access_latency_ms = 20;
    cfg.access_loss = 0.0;  // figure 1 uses the zero-loss setting
    cfg.scenario = scenario;
    cfg.test_duration = sim::from_seconds(5);
    cfg.warmup = sim::from_seconds(2.5);
    cfg.seed = seed_base + static_cast<std::uint64_t>(rep);
    const testbed::TestResult r = run_testbed_experiment(cfg);
    if (!r.features) continue;
    out.max_min_rtt_ms.push_back(r.features->max_rtt_ms -
                                 r.features->min_rtt_ms);
    out.cov.push_back(r.features->cov);
  }
  std::sort(out.max_min_rtt_ms.begin(), out.max_min_rtt_ms.end());
  std::sort(out.cov.begin(), out.cov.end());
  return out;
}

void print_cdf(const char* title, const std::vector<double>& self_vals,
               const std::vector<double>& ext_vals) {
  std::printf("\n%s\n", title);
  std::printf("%-6s %12s %12s\n", "CDF", "self", "external");
  auto quantile = [](const std::vector<double>& v, double q) {
    if (v.empty()) return 0.0;
    const double pos = q * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= v.size()) return v.back();
    return v[lo] * (1 - frac) + v[lo + 1] * frac;
  };
  for (double q : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0}) {
    std::printf("p%-5.0f %12.3f %12.3f\n", q * 100, quantile(self_vals, q),
                quantile(ext_vals, q));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const int reps = opt.full ? 50 : (opt.reps > 0 ? opt.reps : 12);

  bench::print_header(
      "Figure 1 — slow-start RTT signatures, self vs external",
      "Fig. 1a/1b: 20 Mbps access, 100 ms buffer, 20 ms latency");

  const ClassSamples self_s =
      collect(testbed::Scenario::kSelfInduced, reps, 1000);
  const ClassSamples ext_s = collect(testbed::Scenario::kExternal, reps, 2000);

  std::printf("runs with valid features: self=%zu/%d external=%zu/%d\n",
              self_s.cov.size(), reps, ext_s.cov.size(), reps);

  print_cdf("(a) max - min RTT during slow start (ms)",
            self_s.max_min_rtt_ms, ext_s.max_min_rtt_ms);
  print_cdf("(b) coefficient of variation of slow-start RTT", self_s.cov,
            ext_s.cov);

  // The paper's headline observation: the self distribution sits near the
  // access buffer depth (100 ms); the external one sits well below.
  auto median = [](const std::vector<double>& v) {
    return v.empty() ? 0.0 : v[v.size() / 2];
  };
  std::printf(
      "\nsummary: median max-min RTT self=%.1f ms (paper: ~100 ms buffer), "
      "external=%.1f ms (paper: well below)\n",
      median(self_s.max_min_rtt_ms), median(ext_s.max_min_rtt_ms));
  std::printf("summary: median CoV self=%.3f external=%.3f\n",
              median(self_s.cov), median(ext_s.cov));
  return 0;
}

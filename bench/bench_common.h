// Shared infrastructure for the figure/table reproduction benches:
// command-line options, cached datasets, table printing.
//
// Every bench accepts:
//   --reps N        repetitions per configuration (default: bench-specific)
//   --full          paper-scale settings (50 reps, 10 s tests)
//   --jobs N        worker threads for sweeps/campaigns (default: all
//                   hardware threads; 1 = serial). Results are identical
//                   for any N — only wall-clock changes.
//   --cache DIR     cache directory for sweep/campaign CSVs
//   --fresh         ignore caches and regenerate
#pragma once

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ml/decision_tree.h"
#include "runtime/progress.h"
#include "mlab/dispute2014.h"
#include "mlab/tslp2017.h"
#include "testbed/sweep.h"

namespace ccsig::bench {

struct Options {
  int reps = 0;  // 0 = bench default
  int jobs = 0;  // 0 = all hardware threads, 1 = serial
  bool full = false;
  bool fresh = false;
  std::string cache_dir = "bench_cache";
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      opt.full = true;
    } else if (std::strcmp(argv[i], "--fresh") == 0) {
      opt.fresh = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      opt.reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opt.jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      opt.cache_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--reps N] [--jobs N] [--full] [--fresh] "
                   "[--cache DIR]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  std::filesystem::create_directories(opt.cache_dir);
  return opt;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("=====================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("=====================================================\n");
}

/// Progress ticker on stderr (stdout stays clean for the table). Built on
/// the shared runtime::ProgressReporter: in-place redraw with rate and ETA
/// on a terminal, throttled full lines when stderr is redirected. The
/// reporter rides inside the returned callback (shared_ptr) so it lives as
/// long as the campaign options that hold it.
inline std::function<void(std::size_t, std::size_t)> progress_ticker(
    const char* label) {
  auto reporter = std::make_shared<runtime::ProgressReporter>(
      std::string(label));
  return [reporter](std::size_t done, std::size_t total) {
    reporter->update(done, total);
  };
}

/// The standard controlled-experiment sweep, shared by several benches.
inline std::vector<testbed::SweepSample> standard_sweep(const Options& opt) {
  testbed::SweepOptions sweep;
  sweep.scale = 1.0;
  sweep.reps = opt.full ? 50 : (opt.reps > 0 ? opt.reps : 3);
  sweep.test_duration = sim::from_seconds(opt.full ? 10.0 : 5.0);
  sweep.warmup = sim::from_seconds(2.5);
  sweep.jobs = opt.jobs;
  sweep.progress = progress_ticker("testbed-sweep");
  const std::string cache =
      opt.cache_dir + "/testbed_sweep_r" + std::to_string(sweep.reps) + ".csv";
  if (opt.fresh) std::filesystem::remove(cache);
  return testbed::load_or_run_sweep(cache, sweep);
}

/// The Dispute2014 campaign, shared by the figure 5/7/8/9 benches.
inline std::vector<mlab::NdtObservation> standard_dispute2014(
    const Options& opt) {
  mlab::Dispute2014Options campaign;
  campaign.tests_per_cell = opt.full ? 3 : (opt.reps > 0 ? opt.reps : 1);
  campaign.ndt_duration = sim::from_seconds(opt.full ? 10.0 : 6.0);
  if (!opt.full) {
    // Even-hour sampling halves the campaign while keeping the diurnal
    // shape and the paper's peak (16-23h) / off-peak (1-8h) windows.
    campaign.hours = {0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22};
  }
  campaign.jobs = opt.jobs;
  campaign.progress = progress_ticker("dispute2014");
  const std::string cache = opt.cache_dir + "/dispute2014_t" +
                            std::to_string(campaign.tests_per_cell) +
                            (opt.full ? "_full" : "") + ".csv";
  if (opt.fresh) std::filesystem::remove(cache);
  return mlab::load_or_generate_dispute2014(cache, campaign);
}

/// The TSLP2017 campaign (figure 6 and the §5.4 accuracy table).
inline std::vector<mlab::TslpObservation> standard_tslp2017(
    const Options& opt) {
  mlab::Tslp2017Options campaign;
  campaign.days = opt.full ? 10 : (opt.reps > 0 ? opt.reps : 6);
  campaign.ndt_duration = sim::from_seconds(opt.full ? 10.0 : 6.0);
  campaign.episode_probability = 0.4;  // enough labeled externals at 6 days
  campaign.jobs = opt.jobs;
  campaign.progress = progress_ticker("tslp2017");
  const std::string cache = opt.cache_dir + "/tslp2017_d" +
                            std::to_string(campaign.days) + ".csv";
  if (opt.fresh) std::filesystem::remove(cache);
  return mlab::load_or_generate_tslp2017(cache, campaign);
}

/// Trains the paper's depth-4 tree from sweep samples at a threshold.
inline ml::DecisionTree train_tree(
    const std::vector<testbed::SweepSample>& samples, double threshold,
    int depth = 4) {
  ml::DecisionTree tree(ml::DecisionTree::Params{.max_depth = depth});
  tree.fit(testbed::make_dataset(samples, threshold));
  return tree;
}

}  // namespace ccsig::bench

// Micro-benchmarks of the library's hot paths (google-benchmark): event
// queue, shaped link, TCP transfer, RTT extraction, feature computation,
// classifier inference, pcap codec.
#include <benchmark/benchmark.h>

#include "analysis/flow_trace.h"
#include "analysis/rtt_estimator.h"
#include "core/classifier.h"
#include "features/extractor.h"
#include "pcap/headers.h"
#include "sim/network.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"

namespace {

using namespace ccsig;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.schedule((i * 7919) % n, [] {});
    }
    while (!q.empty()) q.pop()();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(100000);

void BM_LinkShaping(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Link::Config cfg;
    cfg.rate_bps = 1e9;
    cfg.buffer_bytes = 1 << 22;
    sim::Link link(sim, cfg, sim::Rng(1));
    int delivered = 0;
    link.set_receiver([&](const sim::Packet&) { ++delivered; });
    sim::Packet p;
    p.payload_bytes = 1448;
    for (int i = 0; i < 1000; ++i) link.send(p);
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkShaping);

void BM_TcpBulkTransfer(benchmark::State& state) {
  for (auto _ : state) {
    sim::Network net(1);
    sim::Node* server = net.add_node("s");
    sim::Node* client = net.add_node("c");
    sim::Link::Config link;
    link.rate_bps = 100e6;
    link.prop_delay = 5 * sim::kMillisecond;
    link.buffer_bytes = sim::buffer_bytes_for(100e6, 50);
    net.connect(server, client, link);
    sim::FlowKey key{server->address(), client->address(), 1, 2};
    tcp::TcpSink::Config sk;
    sk.data_key = key;
    tcp::TcpSink sink(net.sim(), client, sk);
    tcp::TcpSource::Config sc;
    sc.key = key;
    sc.bytes_to_send = 10'000'000;
    tcp::TcpSource source(net.sim(), server, sc);
    source.start();
    net.sim().run_until(sim::from_seconds(30));
    benchmark::DoNotOptimize(sink.bytes_received());
  }
  state.SetBytesProcessed(state.iterations() * 10'000'000);
}
BENCHMARK(BM_TcpBulkTransfer);

analysis::FlowTrace synthetic_flow(int n) {
  analysis::FlowTrace flow;
  flow.data_key = sim::FlowKey{1, 2, 10, 20};
  for (int i = 0; i < n; ++i) {
    analysis::TraceRecord d;
    d.time = i * 100 * sim::kMicrosecond;
    d.key = flow.data_key;
    d.seq = 1 + 1448ull * static_cast<unsigned>(i);
    d.payload_bytes = 1448;
    flow.data.push_back(d);
    analysis::TraceRecord a;
    a.time = d.time + 20 * sim::kMillisecond;
    a.key = flow.data_key.reversed();
    a.ack = d.seq + 1448;
    a.flags.ack = true;
    flow.acks.push_back(a);
  }
  return flow;
}

void BM_RttExtraction(benchmark::State& state) {
  const auto flow = synthetic_flow(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto samples = analysis::extract_rtt_samples(flow);
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RttExtraction)->Arg(100)->Arg(10000);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto flow = synthetic_flow(2000);
  for (auto _ : state) {
    auto f = features::extract_features(flow);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_ClassifierInference(benchmark::State& state) {
  const auto clf = CongestionClassifier::pretrained();
  double nd = 0.1;
  for (auto _ : state) {
    nd = nd > 0.9 ? 0.1 : nd + 0.01;
    auto c = clf.classify(nd, nd / 2);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ClassifierInference);

void BM_PcapEncodeDecode(benchmark::State& state) {
  sim::Packet p;
  p.key = sim::FlowKey{1, 2, 10, 20};
  p.seq = 123456;
  p.ack = 654321;
  p.payload_bytes = 1448;
  p.flags.ack = true;
  for (auto _ : state) {
    const auto frame = pcap::encode_frame(p);
    auto decoded = pcap::decode_frame(frame);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_PcapEncodeDecode);

}  // namespace

BENCHMARK_MAIN();

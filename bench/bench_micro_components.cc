// Micro-benchmarks of the library's hot paths (google-benchmark): event
// queue, shaped link, TCP transfer, RTT extraction, feature computation,
// classifier inference, pcap codec.
//
// Besides wall-clock, the simulator benches report *heap allocation*
// counters via a global operator new/delete hook scoped to this binary.
// Allocation counts are deterministic, so they double as a non-flaky
// regression signal: `tools/bench_micro.py --smoke` (wired into ctest)
// fails if the steady-state simulator path ever allocates again.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>

#include "analysis/flow_trace.h"
#include "analysis/rtt_estimator.h"
#include "core/classifier.h"
#include "features/extractor.h"
#include "obs/metrics.h"
#include "pcap/headers.h"
#include "service/latency.h"
#include "service/verdict_log.h"
#include "sim/network.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};

std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

/// Counts heap allocations across a scope. Deterministic, unlike timings.
class AllocProbe {
 public:
  AllocProbe() : start_(heap_allocs()) {}
  std::uint64_t count() const { return heap_allocs() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace

// Counting replacements for the global allocation functions. Only the
// plain forms are replaced; the aligned/nothrow forms are not used by the
// hot paths this binary measures.
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ccsig;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t allocs = 0;
  std::uint64_t items = 0;
  for (auto _ : state) {
    // Queue construction/teardown is not the cost under measurement; keep
    // it outside the timed region so the number isolates schedule+pop.
    state.PauseTiming();
    auto q = std::make_unique<sim::EventQueue>();
    state.ResumeTiming();
    {
      const AllocProbe probe;
      for (int i = 0; i < n; ++i) {
        q->schedule((i * 7919) % n, [] {});
      }
      while (!q->empty()) q->pop()();
      allocs += probe.count();
    }
    items += static_cast<std::uint64_t>(n);
    state.PauseTiming();
    q.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["allocs_per_event"] =
      static_cast<double>(allocs) / static_cast<double>(items);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(100000);

void BM_LinkShaping(benchmark::State& state) {
  std::uint64_t allocs = 0;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Link::Config cfg;
    cfg.rate_bps = 1e9;
    cfg.buffer_bytes = 1 << 22;
    sim::Link link(sim, cfg, sim::Rng(1));
    int delivered = 0;
    link.set_receiver([&](const sim::Packet&) { ++delivered; });
    sim::Packet p;
    p.payload_bytes = 1448;
    const AllocProbe probe;
    for (int i = 0; i < 1000; ++i) link.send(p);
    sim.run();
    allocs += probe.count();
    packets += 1000;
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["allocs_per_packet"] =
      static_cast<double>(allocs) / static_cast<double>(packets);
}
BENCHMARK(BM_LinkShaping);

void BM_TcpBulkTransfer(benchmark::State& state) {
  std::uint64_t allocs = 0;
  std::uint64_t segments = 0;
  for (auto _ : state) {
    sim::Network net(1);
    sim::Node* server = net.add_node("s");
    sim::Node* client = net.add_node("c");
    sim::Link::Config link;
    link.rate_bps = 100e6;
    link.prop_delay = 5 * sim::kMillisecond;
    link.buffer_bytes = sim::buffer_bytes_for(100e6, 50);
    net.connect(server, client, link);
    sim::FlowKey key{server->address(), client->address(), 1, 2};
    tcp::TcpSink::Config sk;
    sk.data_key = key;
    tcp::TcpSink sink(net.sim(), client, sk);
    tcp::TcpSource::Config sc;
    sc.key = key;
    sc.bytes_to_send = 10'000'000;
    tcp::TcpSource source(net.sim(), server, sc);
    source.start();
    const AllocProbe probe;
    net.sim().run_until(sim::from_seconds(30));
    allocs += probe.count();
    segments += source.stats().segments_sent + sink.stats().acks_sent;
    benchmark::DoNotOptimize(sink.bytes_received());
  }
  state.SetBytesProcessed(state.iterations() * 10'000'000);
  state.counters["allocs_per_seg"] =
      static_cast<double>(allocs) / static_cast<double>(segments);
}
BENCHMARK(BM_TcpBulkTransfer);

// Steady-state allocation probe. A 100 MB transfer at 100 Mbps runs ≈ 8.5
// simulated seconds; by 2 s it has finished slow start, overshot the
// buffer, and completed its first recovery episode — every pool (event
// arena, packet ring, segment-map free lists) is at its high-water mark.
// From there to the end of the transfer the simulator must not touch the
// heap at all; `steady_allocs` is asserted == 0 by the ctest smoke test.
void BM_TcpSteadyStateAllocs(benchmark::State& state) {
  std::uint64_t allocs = 0;
  std::uint64_t segments = 0;
  for (auto _ : state) {
    sim::Network net(1);
    sim::Node* server = net.add_node("s");
    sim::Node* client = net.add_node("c");
    sim::Link::Config link;
    link.rate_bps = 100e6;
    link.prop_delay = 5 * sim::kMillisecond;
    link.buffer_bytes = sim::buffer_bytes_for(100e6, 50);
    net.connect(server, client, link);
    sim::FlowKey key{server->address(), client->address(), 1, 2};
    tcp::TcpSink::Config sk;
    sk.data_key = key;
    tcp::TcpSink sink(net.sim(), client, sk);
    tcp::TcpSource::Config sc;
    sc.key = key;
    sc.bytes_to_send = 100'000'000;
    tcp::TcpSource source(net.sim(), server, sc);
    source.start();
    net.sim().run_until(sim::from_seconds(2));  // warmup: pools reach peak
    const std::uint64_t segs_before =
        source.stats().segments_sent + sink.stats().acks_sent;
    const AllocProbe probe;
    net.sim().run_until(sim::from_seconds(30));
    allocs += probe.count();
    segments += source.stats().segments_sent + sink.stats().acks_sent -
                segs_before;
    benchmark::DoNotOptimize(sink.bytes_received());
  }
  state.counters["steady_allocs"] = static_cast<double>(allocs);
  state.counters["steady_allocs_per_seg"] =
      segments > 0 ? static_cast<double>(allocs) / static_cast<double>(segments)
                   : 0.0;
  state.counters["steady_segments"] = static_cast<double>(segments);
}
BENCHMARK(BM_TcpSteadyStateAllocs);

analysis::FlowTrace synthetic_flow(int n) {
  analysis::FlowTrace flow;
  flow.data_key = sim::FlowKey{1, 2, 10, 20};
  for (int i = 0; i < n; ++i) {
    analysis::TraceRecord d;
    d.time = i * 100 * sim::kMicrosecond;
    d.key = flow.data_key;
    d.seq = 1 + 1448ull * static_cast<unsigned>(i);
    d.payload_bytes = 1448;
    flow.data.push_back(d);
    analysis::TraceRecord a;
    a.time = d.time + 20 * sim::kMillisecond;
    a.key = flow.data_key.reversed();
    a.ack = d.seq + 1448;
    a.flags.ack = true;
    flow.acks.push_back(a);
  }
  return flow;
}

void BM_RttExtraction(benchmark::State& state) {
  const auto flow = synthetic_flow(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto samples = analysis::extract_rtt_samples(flow);
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RttExtraction)->Arg(100)->Arg(10000);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto flow = synthetic_flow(2000);
  for (auto _ : state) {
    auto f = features::extract_features(flow);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_ClassifierInference(benchmark::State& state) {
  const auto clf = CongestionClassifier::pretrained();
  double nd = 0.1;
  for (auto _ : state) {
    nd = nd > 0.9 ? 0.1 : nd + 0.01;
    auto c = clf.classify(nd, nd / 2);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ClassifierInference);

// Metrics overhead. BM_MetricsCounterRecord measures the live sharded
// counter path (and asserts it never allocates once the calling thread's
// shard exists — the first record per thread allocates it, so a warm-up
// record precedes the probe). BM_MetricsCounterInert measures the
// default-constructed handle, which is the same two-branch no-op a
// CCSIG_OBS_OFF build compiles every record call down to — comparing the
// two is the instrumented-vs-off overhead of a record.
void BM_MetricsCounterRecord(benchmark::State& state) {
  obs::Counter c = obs::MetricsRegistry::global().counter("bench.counter");
  c.inc();  // allocate this thread's shard before probing
  std::uint64_t allocs = 0;
  std::uint64_t records = 0;
  for (auto _ : state) {
    const AllocProbe probe;
    for (int i = 0; i < 1000; ++i) c.inc();
    allocs += probe.count();
    records += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["allocs_per_record"] =
      static_cast<double>(allocs) / static_cast<double>(records);
}
BENCHMARK(BM_MetricsCounterRecord);

void BM_MetricsCounterInert(benchmark::State& state) {
  obs::Counter c;  // not registered: records are dropped in two branches
  std::uint64_t allocs = 0;
  std::uint64_t records = 0;
  for (auto _ : state) {
    const AllocProbe probe;
    for (int i = 0; i < 1000; ++i) {
      c.inc();
      benchmark::DoNotOptimize(c);
    }
    allocs += probe.count();
    records += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["allocs_per_record"] =
      static_cast<double>(allocs) / static_cast<double>(records);
}
BENCHMARK(BM_MetricsCounterInert);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  obs::Histogram h = obs::MetricsRegistry::global().histogram(
      "bench.histogram", {0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000});
  h.record(1.0);  // allocate this thread's shard before probing
  std::uint64_t allocs = 0;
  std::uint64_t records = 0;
  double v = 0.05;
  for (auto _ : state) {
    const AllocProbe probe;
    for (int i = 0; i < 1000; ++i) {
      v = v > 900 ? 0.05 : v * 1.7;
      h.record(v);
    }
    allocs += probe.count();
    records += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["allocs_per_record"] =
      static_cast<double>(allocs) / static_cast<double>(records);
}
BENCHMARK(BM_MetricsHistogramRecord);

void BM_PcapEncodeDecode(benchmark::State& state) {
  sim::Packet p;
  p.key = sim::FlowKey{1, 2, 10, 20};
  p.seq = 123456;
  p.ack = 654321;
  p.payload_bytes = 1448;
  p.flags.ack = true;
  std::uint64_t allocs = 0;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    const AllocProbe probe;
    const auto frame = pcap::encode_frame(p);
    auto decoded = pcap::decode_frame(frame);
    allocs += probe.count();
    ++frames;
    benchmark::DoNotOptimize(decoded);
  }
  state.counters["allocs_per_frame"] =
      static_cast<double>(allocs) / static_cast<double>(frames);
}
BENCHMARK(BM_PcapEncodeDecode);

// ccsigd's verdict-log append: frame (length + CRC32 + payload) into the
// reused buffer, one ::write. Zero steady-state allocations — a warm-up
// append grows the frame buffer to the payload size; every probed append
// must reuse it.
void BM_VerdictLogAppend(benchmark::State& state) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ccsig_bench_verdicts.log")
          .string();
  std::filesystem::remove(path);
  service::VerdictLog log(path);
  const std::string line =
      "10.0.0.1:5001 -> 10.0.0.2:5002  23.4 Mbps over 12.8 s  "
      "=> self-induced congestion (confidence 0.94, norm_diff 0.412, "
      "cov 0.108)";
  log.append(line);  // warm-up: grows the reused frame buffer
  std::uint64_t allocs = 0;
  std::uint64_t verdicts = 0;
  for (auto _ : state) {
    const AllocProbe probe;
    for (int i = 0; i < 100; ++i) log.append(line);
    allocs += probe.count();
    verdicts += 100;
  }
  state.SetItemsProcessed(state.iterations() * 100);
  state.counters["allocs_per_verdict"] =
      static_cast<double>(allocs) / static_cast<double>(verdicts);
  std::filesystem::remove(path);
}
BENCHMARK(BM_VerdictLogAppend);

// ccsigd's per-verdict latency instrumentation: the ingest stamp/anchor
// plus on_verdict recording into both fixed-bucket SLO histograms (two
// relaxed RMWs). Runs on the emission hot path, so it must be
// allocation-free once the thread's metrics shard exists — a warm-up
// record creates the shard; `allocs_per_verdict` is asserted == 0 by the
// ctest smoke test.
void BM_VerdictLatencyPath(benchmark::State& state) {
  service::LatencyTracker tracker;
  tracker.init();
  tracker.on_ingest(1'000'000, 0);
  tracker.on_verdict(2'000'000, 1'000'000, 0);  // warm-up: thread shard
  std::uint64_t allocs = 0;
  std::uint64_t verdicts = 0;
  std::int64_t now = 2'000'000;
  for (auto _ : state) {
    const AllocProbe probe;
    for (int i = 0; i < 1000; ++i) {
      now += 50'000;  // ~50us between verdicts, latencies spread buckets
      tracker.on_ingest(now - 40'000, now - 90'000);
      tracker.on_verdict(now, now - 40'000, now - 90'000);
    }
    allocs += probe.count();
    verdicts += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["allocs_per_verdict"] =
      static_cast<double>(allocs) / static_cast<double>(verdicts);
  state.counters["latency_recorded"] =
      static_cast<double>(tracker.recorded());
}
BENCHMARK(BM_VerdictLatencyPath);

}  // namespace

BENCHMARK_MAIN();

// §3.3 "Why do we need both metrics?": classifiers restricted to a single
// feature vs the paper's two-feature tree, plus the extended feature set
// (RTT slope, IQR) as an upper-bound reference.
#include "bench_common.h"
#include "ml/metrics.h"
#include "ml/split.h"

using namespace ccsig;

namespace {

ml::Dataset project(const ml::Dataset& data,
                    const std::vector<std::size_t>& cols,
                    std::vector<std::string> names) {
  ml::Dataset out(std::move(names));
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::vector<double> row;
    for (std::size_t c : cols) row.push_back(data.row(i)[c]);
    out.add(std::move(row), data.label(i));
  }
  return out;
}

void evaluate(const char* name, const ml::Dataset& data) {
  sim::Rng rng(55);
  const auto [train, test] = ml::stratified_split(data, 0.3, rng);
  ml::DecisionTree tree(ml::DecisionTree::Params{.max_depth = 4});
  tree.fit(train);
  const ml::ConfusionMatrix cm(test.labels(), tree.predict_all(test));
  std::printf("%-24s %9.1f%% %9.3f %9.3f %9.3f %9.3f\n", name,
              100.0 * cm.accuracy(), cm.precision(0), cm.recall(0),
              cm.precision(1), cm.recall(1));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Ablation — feature sets",
                      "§3.3: why the classifier needs both NormDiff and CoV");

  const auto samples = bench::standard_sweep(opt);
  const ml::Dataset both = testbed::make_dataset(samples, 0.8);
  const ml::Dataset extended =
      testbed::make_dataset(samples, 0.8, /*extended=*/true);

  std::printf("%-24s %10s %9s %9s %9s %9s\n", "features", "accuracy",
              "P_ext", "R_ext", "P_self", "R_self");
  evaluate("norm_diff only", project(both, {0}, {"norm_diff"}));
  evaluate("cov only", project(both, {1}, {"cov"}));
  evaluate("norm_diff + cov (paper)", both);
  evaluate("+ slope + iqr", extended);

  std::printf(
      "\npaper: each metric alone leaves overlap (NormDiff strong with "
      "large buffers/low loss, CoV with small buffers/higher loss); the "
      "pair covers both regimes.\n");
  return 0;
}

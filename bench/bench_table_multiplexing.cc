// §3.3 "The impact of multiplexing": how classification shifts when
//  (a) the interconnect is congested by fewer concurrent flows
//      (100 -> 50 -> 20 -> 10), and
//  (b) cross traffic shares the access link with the test flow (1, 2, 5
//      concurrent flows).
// Paper: externally-classified fraction falls 93% -> 84% -> 74% -> 50% in
// (a); self-classified fraction falls 86% -> ... -> 70% in (b).
#include "bench_common.h"
#include "core/classifier.h"
#include "testbed/experiment.h"

using namespace ccsig;

namespace {

struct Fractions {
  int classified_external = 0;
  int classified_self = 0;
  int no_features = 0;
  int runs = 0;
};

Fractions run_batch(const CongestionClassifier& clf,
                    testbed::TestbedConfig base, int reps,
                    std::uint64_t seed_base) {
  Fractions f;
  for (int rep = 0; rep < reps; ++rep) {
    base.seed = seed_base + static_cast<std::uint64_t>(rep);
    const testbed::TestResult r = run_testbed_experiment(base);
    ++f.runs;
    if (!r.features) {
      ++f.no_features;
      continue;
    }
    const auto c = clf.classify(*r.features);
    if (c.verdict == Verdict::kExternalCongestion) {
      ++f.classified_external;
    } else {
      ++f.classified_self;
    }
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const int reps = opt.full ? 50 : (opt.reps > 0 ? opt.reps : 16);
  bench::print_header("§3.3 table — the impact of multiplexing",
                      "external detection vs TGcong flow count; self "
                      "detection vs access-link cross flows");

  // Train on the standard sweep at threshold 0.8 (like the shipped model,
  // but consistent with the current cache).
  const auto samples = bench::standard_sweep(opt);
  CongestionClassifier clf;
  clf.train(testbed::make_dataset(samples, 0.8));

  std::printf("\n(a) external congestion with fewer interconnect flows "
              "(50 Mbps access)\n");
  std::printf("%-14s %10s %10s %10s\n", "tgcong_flows", "%external",
              "%self", "unusable");
  for (int flows : {100, 50, 20, 10}) {
    testbed::TestbedConfig cfg;
    cfg.access_rate_mbps = 50;  // the paper fixes 50 Mbps here
    cfg.scenario = testbed::Scenario::kExternal;
    cfg.tgcong_flows = flows;
    cfg.test_duration = sim::from_seconds(5);
    cfg.warmup = sim::from_seconds(2.5);
    const Fractions f =
        run_batch(clf, cfg, reps, 10'000 + static_cast<std::uint64_t>(flows));
    const int classified = f.classified_external + f.classified_self;
    std::printf("%-14d %9.0f%% %9.0f%% %10d\n", flows,
                classified ? 100.0 * f.classified_external / classified : 0.0,
                classified ? 100.0 * f.classified_self / classified : 0.0,
                f.no_features);
  }
  std::printf("paper: 93%% / 84%% / 74%% / 50%% external at 100/50/20/10\n");

  std::printf("\n(b) self-induced congestion with access-link cross "
              "traffic (50 Mbps access)\n");
  std::printf("%-14s %10s %10s %10s\n", "cross_flows", "%self", "%external",
              "unusable");
  for (int cross : {0, 1, 2, 5}) {
    testbed::TestbedConfig cfg;
    cfg.access_rate_mbps = 50;
    cfg.scenario = testbed::Scenario::kSelfInduced;
    cfg.access_cross_flows = cross;
    cfg.test_duration = sim::from_seconds(5);
    cfg.warmup = sim::from_seconds(2.5);
    const Fractions f =
        run_batch(clf, cfg, reps, 20'000 + static_cast<std::uint64_t>(cross));
    const int classified = f.classified_external + f.classified_self;
    std::printf("%-14d %9.0f%% %9.0f%% %10d\n", cross,
                classified ? 100.0 * f.classified_self / classified : 0.0,
                classified ? 100.0 * f.classified_external / classified : 0.0,
                f.no_features);
  }
  std::printf("paper: 86%% self at 1 cross flow, 70%% at 5\n");
  return 0;
}

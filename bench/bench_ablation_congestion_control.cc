// §6 limitations probe: how the signature behaves when the measured flow
// runs CUBIC or a BBR-like latency-based controller instead of Reno, and
// across access buffers of roughly 1–5x BDP. The paper predicts the
// technique keeps working for loss-based senders as long as the flow
// induces measurable buffering, and may be confounded by BBR, which
// deliberately avoids filling the buffer.
#include "bench_common.h"
#include "core/classifier.h"
#include "testbed/experiment.h"

using namespace ccsig;

namespace {

struct Row {
  double mean_nd = 0;
  double mean_cov = 0;
  int classified_self = 0;
  int usable = 0;
  int runs = 0;
};

Row run_batch(const CongestionClassifier& clf, const std::string& cc,
              double buffer_ms, testbed::Scenario scenario, int reps,
              std::uint64_t seed_base) {
  Row row;
  for (int rep = 0; rep < reps; ++rep) {
    testbed::TestbedConfig cfg;
    cfg.congestion_control = cc;
    cfg.access_buffer_ms = buffer_ms;
    cfg.scenario = scenario;
    cfg.test_duration = sim::from_seconds(5);
    cfg.warmup = sim::from_seconds(2.5);
    cfg.seed = seed_base + static_cast<std::uint64_t>(rep);
    const testbed::TestResult r = run_testbed_experiment(cfg);
    ++row.runs;
    if (!r.features) continue;
    ++row.usable;
    row.mean_nd += r.features->norm_diff;
    row.mean_cov += r.features->cov;
    row.classified_self +=
        clf.classify(*r.features).verdict == Verdict::kSelfInducedCongestion
            ? 1
            : 0;
  }
  if (row.usable > 0) {
    row.mean_nd /= row.usable;
    row.mean_cov /= row.usable;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const int reps = opt.full ? 20 : (opt.reps > 0 ? opt.reps : 5);
  bench::print_header(
      "Ablation — sender congestion control and buffer depth",
      "§6: loss-based variants keep the signature; BBR confounds it");

  const auto samples = bench::standard_sweep(opt);
  CongestionClassifier clf;
  clf.train(testbed::make_dataset(samples, 0.8));

  // 20 Mbps x 20 ms base RTT -> BDP = 50 KB ~ 20 ms of buffering; buffers
  // from 20 ms (1x BDP) to 100 ms (5x BDP), the paper's tested band.
  std::printf("\nself-induced scenario (access 20 Mbps, 20 ms RTT)\n");
  std::printf("%-8s %-10s %10s %10s %12s %8s\n", "cc", "buffer",
              "norm_diff", "cov", "%self-class", "usable");
  std::uint64_t seed = 40'000;
  for (const std::string cc : {"reno", "cubic", "bbr"}) {
    for (double buffer_ms : {20.0, 60.0, 100.0}) {
      const Row row = run_batch(clf, cc, buffer_ms,
                                testbed::Scenario::kSelfInduced, reps,
                                seed += 1000);
      std::printf("%-8s %-10.0f %10.3f %10.3f %11.0f%% %5d/%d\n", cc.c_str(),
                  buffer_ms, row.mean_nd, row.mean_cov,
                  row.usable ? 100.0 * row.classified_self / row.usable : 0.0,
                  row.usable, row.runs);
    }
  }

  std::printf("\nexternal scenario (interconnect congested)\n");
  std::printf("%-8s %-10s %10s %10s %12s %8s\n", "cc", "buffer",
              "norm_diff", "cov", "%ext-class", "usable");
  for (const std::string cc : {"reno", "cubic", "bbr"}) {
    const Row row = run_batch(clf, cc, 100.0, testbed::Scenario::kExternal,
                              reps, seed += 1000);
    std::printf("%-8s %-10.0f %10.3f %10.3f %11.0f%% %5d/%d\n", cc.c_str(),
                100.0, row.mean_nd, row.mean_cov,
                row.usable
                    ? 100.0 * (row.usable - row.classified_self) / row.usable
                    : 0.0,
                row.usable, row.runs);
  }

  std::printf(
      "\npaper: Reno/CUBIC keep high NormDiff/CoV when self-inducing "
      "(buffer >= 1x BDP); a latency-based sender (BBR) holds queueing "
      "down, shrinking the self signature — the §6 caveat.\n");
  return 0;
}

// ML-layer micro-benchmarks (google-benchmark): tree fit, forest fit, and
// batched forest inference, with the same counting-allocator pattern as
// bench_micro_components so `tools/bench_micro.py --smoke` can enforce a
// hard allocs_per_prediction == 0 bound on the batched inference path.
//
// The fit benches run on a 1M-row synthetic dataset (quantized gaussian
// mixtures, so duplicate feature values and tie boundaries are common, as
// in real campaign features). They pin Iterations(1): a fit is seconds,
// not nanoseconds, and one deterministic run is the comparable number.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>

#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "sim/random.h"

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};

std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

/// Counts heap allocations across a scope. Deterministic, unlike timings.
class AllocProbe {
 public:
  AllocProbe() : start_(heap_allocs()) {}
  std::uint64_t count() const { return heap_allocs() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace

// Counting replacements for the global allocation functions. Only the
// plain forms are replaced; the aligned/nothrow forms are not used by the
// paths this binary measures.
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ccsig;

constexpr int kFeatures = 4;
constexpr int kClasses = 3;
constexpr int kFitDepth = 8;
constexpr int kForestTrees = 4;

/// Gaussian-mixture rows quantized to two decimals: heavy duplicate
/// feature values, overlapping classes, so trees grow to the depth cap.
ml::Dataset synthetic_ml_dataset(std::size_t rows, std::uint64_t seed) {
  ml::Dataset d;
  sim::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    const int label = static_cast<int>(i % kClasses);
    std::vector<double> row(kFeatures);
    for (int f = 0; f < kFeatures; ++f) {
      const double center = 0.4 * label + 0.1 * f;
      row[f] = std::round(rng.normal(center, 0.5) * 100.0) / 100.0;
    }
    d.add(std::move(row), label);
  }
  return d;
}

const ml::Dataset& fit_dataset(std::size_t rows) {
  static const ml::Dataset* cached = nullptr;
  static std::size_t cached_rows = 0;
  if (!cached || cached_rows != rows) {
    delete cached;
    cached = new ml::Dataset(synthetic_ml_dataset(rows, 20260808));
    cached_rows = rows;
  }
  return *cached;
}

void BM_TreeFit(benchmark::State& state) {
  const auto& data = fit_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ml::DecisionTree tree(ml::DecisionTree::Params{.max_depth = kFitDepth});
    tree.fit(data);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TreeFit)->Arg(1000000)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_ForestFit(benchmark::State& state) {
  const auto& data = fit_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ml::RandomForest forest(
        ml::RandomForest::Params{.n_trees = kForestTrees,
                                 .tree = {.max_depth = kFitDepth}},
        7);
    forest.fit(data, /*jobs=*/0);  // all hardware threads; model is
                                   // byte-identical at any jobs value
    benchmark::DoNotOptimize(forest.tree_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * kForestTrees);
}
BENCHMARK(BM_ForestFit)->Arg(1000000)->Iterations(1)->Unit(benchmark::kMillisecond);

// Batched forest inference over a 4096-row block. The allocs_per_prediction
// counter is deterministic and enforced == 0 by bench_micro_smoke.
void BM_ForestInferenceBatch(benchmark::State& state) {
  static const ml::RandomForest* forest = nullptr;
  if (!forest) {
    auto* f = new ml::RandomForest(
        ml::RandomForest::Params{.n_trees = 25, .tree = {.max_depth = kFitDepth}},
        7);
    f->fit(synthetic_ml_dataset(20000, 20260808));
    forest = f;
  }
  const ml::Dataset batch = synthetic_ml_dataset(4096, 424242);
  std::vector<int> out(batch.size());
  std::vector<double> probs(
      static_cast<std::size_t>(forest->trees().front().num_classes()));
  std::uint64_t allocs = 0;
  std::uint64_t predictions = 0;
  for (auto _ : state) {
    const AllocProbe probe;
    forest->predict_all(batch, out);
    // One zero-alloc probability read per batch, covering the span
    // overload the classifier hot path uses.
    forest->trees().front().predict_proba(batch.row(0), probs);
    allocs += probe.count();
    predictions += batch.size();
    benchmark::DoNotOptimize(out.data());
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch.size()));
  state.counters["allocs_per_prediction"] =
      static_cast<double>(allocs) / static_cast<double>(predictions);
}
BENCHMARK(BM_ForestInferenceBatch);

}  // namespace

BENCHMARK_MAIN();

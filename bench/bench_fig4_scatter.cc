// Figure 4: raw NormDiff vs CoV for the controlled experiments, by class —
// the two clusters the decision tree separates.
#include "bench_common.h"

using namespace ccsig;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 4 — NormDiff vs CoV scatter (testbed runs)",
                      "Fig. 4: both metrics are needed to separate classes");

  const auto samples = bench::standard_sweep(opt);

  std::printf("%-10s %-10s %s\n", "norm_diff", "cov", "scenario");
  for (const auto& s : samples) {
    std::printf("%-10.4f %-10.4f %s\n", s.norm_diff, s.cov,
                s.scenario == 1 ? "self" : "external");
  }

  // Per-class centroids summarize the separation.
  double nd[2] = {0, 0}, cov[2] = {0, 0};
  std::size_t n[2] = {0, 0};
  for (const auto& s : samples) {
    nd[s.scenario] += s.norm_diff;
    cov[s.scenario] += s.cov;
    ++n[s.scenario];
  }
  std::printf("\ncentroids:\n");
  for (int c : {1, 0}) {
    if (n[c] == 0) continue;
    std::printf("  %-8s norm_diff=%.3f cov=%.3f (n=%zu)\n",
                c == 1 ? "self" : "external", nd[c] / static_cast<double>(n[c]),
                cov[c] / static_cast<double>(n[c]), n[c]);
  }
  std::printf(
      "\npaper: classes separate along both axes but overlap on each alone "
      "— hence the two-feature tree.\n");
  return 0;
}

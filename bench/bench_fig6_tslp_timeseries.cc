// Figure 6: the TSLP2017 targeted experiment time series — far-router TSLP
// latency spikes (a) coincide with NDT throughput drops (b).
#include <cmath>

#include "bench_common.h"

using namespace ccsig;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 6 — TSLP latency vs NDT throughput time series",
      "Fig. 6a/6b: Comcast client to TATA-hosted M-Lab server");

  const auto obs = bench::standard_tslp2017(opt);
  std::printf("slots: %zu\n\n", obs.size());

  std::printf("%-4s %-6s %-7s %12s %12s %12s %9s\n", "day", "hour", "min",
              "near_rtt_ms", "far_rtt_ms", "ndt_mbps", "episode");
  for (const auto& o : obs) {
    std::printf("%-4d %-6d %-7d %12.1f %12.1f %12.2f %9s\n", o.day, o.hour,
                o.minute, o.near_rtt_ms, o.far_rtt_ms, o.throughput_mbps,
                o.truth_external ? "yes" : "");
  }

  // The paper's headline: a strong negative correlation between far-side
  // TSLP latency and NDT throughput; flat near-side latency.
  double mean_far = 0, mean_tput = 0, mean_near = 0;
  for (const auto& o : obs) {
    mean_far += o.far_rtt_ms;
    mean_tput += o.throughput_mbps;
    mean_near += o.near_rtt_ms;
  }
  const double n = static_cast<double>(obs.size());
  mean_far /= n;
  mean_tput /= n;
  mean_near /= n;
  double cov_ft = 0, var_f = 0, var_t = 0, var_n = 0;
  for (const auto& o : obs) {
    cov_ft += (o.far_rtt_ms - mean_far) * (o.throughput_mbps - mean_tput);
    var_f += (o.far_rtt_ms - mean_far) * (o.far_rtt_ms - mean_far);
    var_t += (o.throughput_mbps - mean_tput) *
             (o.throughput_mbps - mean_tput);
    var_n += (o.near_rtt_ms - mean_near) * (o.near_rtt_ms - mean_near);
  }
  const double corr =
      var_f > 0 && var_t > 0 ? cov_ft / std::sqrt(var_f * var_t) : 0.0;
  std::printf("\ncorrelation(far TSLP latency, NDT throughput) = %.3f "
              "(paper: strong negative)\n",
              corr);
  std::printf("near-side RTT stddev = %.2f ms (paper: flat)\n",
              std::sqrt(var_n / n));
  std::printf("baseline far RTT = ~%.1f ms; congested episodes rise by the "
              "~15 ms interconnect buffer (paper: 18 -> 30+ ms)\n",
              mean_near);
  return 0;
}

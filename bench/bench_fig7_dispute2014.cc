// Figure 7: fraction of Dispute2014 flows classified as self-induced, per
// (transit site × access ISP × timeframe), with testbed-trained models at
// labeling thresholds 0.7 / 0.8 / 0.9.
//
// Expectation (paper): Jan-Feb fractions are much lower than Mar-Apr for
// the affected combinations (Comcast/TimeWarner/Verizon through Cogent);
// similar for Cox and for everyone through Level3.
#include "bench_common.h"
#include "ml/decision_tree.h"

using namespace ccsig;

namespace {

struct Cell {
  int self = 0;
  int total = 0;
  double fraction() const {
    return total ? static_cast<double>(self) / total : 0.0;
  }
};

/// Timeframe encoding: 0 = Jan-Feb peak, 1 = Mar-Apr off-peak (the paper's
/// labeled windows).
int timeframe_of(const mlab::NdtObservation& o) {
  const bool jan_feb = o.month == 1 || o.month == 2;
  if (jan_feb && mlab::is_peak_hour(o.hour)) return 0;
  if (!jan_feb && mlab::is_offpeak_hour(o.hour)) return 1;
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 7 — % classified self-induced, Dispute2014",
      "Fig. 7a-c: per transit site / ISP / timeframe, thresholds 0.7-0.9");

  const auto sweep = bench::standard_sweep(opt);
  const auto obs = bench::standard_dispute2014(opt);

  const std::vector<std::pair<std::string, std::string>> sites = {
      {"Cogent", "LAX"}, {"Cogent", "LGA"}, {"Level3", "ATL"}};
  const std::vector<std::string> isps = {"Comcast", "TimeWarner", "Verizon",
                                         "Cox"};

  for (double threshold : {0.7, 0.8, 0.9}) {
    const ml::DecisionTree tree = bench::train_tree(sweep, threshold);
    std::printf("\n--- labeling threshold %.1f ---\n", threshold);
    std::printf("%-22s %-12s %16s %16s\n", "transit(site)", "isp",
                "Jan-Feb peak", "Mar-Apr offpeak");
    for (const auto& [transit, site] : sites) {
      for (const auto& isp : isps) {
        Cell cells[2];
        for (const auto& o : obs) {
          if (o.transit != transit || o.site != site || o.isp != isp) continue;
          if (!o.has_features || !o.passes_filters) continue;
          const int tf = timeframe_of(o);
          if (tf < 0) continue;
          const double row[] = {o.norm_diff, o.cov};
          const int pred = tree.predict(row);
          ++cells[tf].total;
          cells[tf].self += pred == 1 ? 1 : 0;
        }
        std::printf("%-22s %-12s %11.0f%% (%2d) %11.0f%% (%2d)\n",
                    (transit + " (" + site + ")").c_str(), isp.c_str(),
                    100.0 * cells[0].fraction(), cells[0].total,
                    100.0 * cells[1].fraction(), cells[1].total);
      }
    }
  }
  std::printf(
      "\npaper: affected combos (Cogent x non-Cox) show a large Jan-Feb vs "
      "Mar-Apr gap (e.g. 40%% -> 75%%); Cox and Level3 combos show little "
      "change. Higher thresholds lower all self fractions without changing "
      "the trend.\n");
  return 0;
}

// Figure 5: diurnal mean NDT throughput per access ISP —
//   (a) Cogent/LAX in January (dispute active: all ISPs but Cox dip at peak),
//   (b) Level3/ATL in January (no dispute: flat),
//   (c) Cogent/LAX in April (resolved: flat again).
#include <map>

#include "bench_common.h"

using namespace ccsig;

namespace {

void print_panel(const std::vector<mlab::NdtObservation>& obs,
                 const char* title, const std::string& transit,
                 const std::string& site, int month) {
  std::printf("\n%s\n", title);
  const std::vector<std::string> isps = {"Comcast", "TimeWarner", "Verizon",
                                         "Cox"};
  std::printf("%-5s", "hour");
  for (const auto& isp : isps) std::printf(" %11s", isp.c_str());
  std::printf("\n");

  for (int hour = 0; hour < 24; ++hour) {
    std::printf("%-5d", hour);
    for (const auto& isp : isps) {
      double sum = 0;
      int n = 0;
      for (const auto& o : obs) {
        if (o.transit == transit && o.site == site && o.month == month &&
            o.hour == hour && o.isp == isp) {
          sum += o.throughput_mbps;
          ++n;
        }
      }
      if (n > 0) {
        std::printf(" %9.1f M", sum / n);
      } else {
        std::printf(" %11s", "-");
      }
    }
    std::printf("\n");
  }
}

double peak_offpeak_ratio(const std::vector<mlab::NdtObservation>& obs,
                          const std::string& transit, const std::string& isp,
                          int month) {
  double peak = 0, off = 0;
  int n_peak = 0, n_off = 0;
  for (const auto& o : obs) {
    if (o.transit != transit || o.isp != isp || o.month != month) continue;
    if (o.hour >= 19 && o.hour <= 22) {
      peak += o.throughput_mbps;
      ++n_peak;
    } else if (o.hour >= 2 && o.hour <= 5) {
      off += o.throughput_mbps;
      ++n_off;
    }
  }
  if (n_peak == 0 || n_off == 0 || off == 0) return 1.0;
  return (peak / n_peak) / (off / n_off);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 5 — diurnal NDT throughput by ISP",
                      "Fig. 5a-c: the Cogent dispute's evening dip");

  const auto obs = bench::standard_dispute2014(opt);
  std::printf("campaign observations: %zu\n", obs.size());

  print_panel(obs, "(a) Cogent customers, LAX server, January", "Cogent",
              "LAX", 1);
  print_panel(obs, "(b) Level3 customers, ATL server, January", "Level3",
              "ATL", 1);
  print_panel(obs, "(c) Cogent customers, LAX server, April", "Cogent",
              "LAX", 4);

  std::printf("\npeak(19-22h) / off-peak(2-5h) throughput ratios:\n");
  std::printf("%-12s %14s %14s %14s\n", "ISP", "Cogent/Jan", "Level3/Jan",
              "Cogent/Apr");
  for (const std::string isp : {"Comcast", "TimeWarner", "Verizon", "Cox"}) {
    std::printf("%-12s %14.2f %14.2f %14.2f\n", isp.c_str(),
                peak_offpeak_ratio(obs, "Cogent", isp, 1),
                peak_offpeak_ratio(obs, "Level3", isp, 1),
                peak_offpeak_ratio(obs, "Cogent", isp, 4));
  }
  std::printf(
      "\npaper: strong dips (ratio << 1) only for non-Cox ISPs on Cogent in "
      "Jan-Feb; flat (~1) for Cox, Level3, and after resolution.\n");
  return 0;
}

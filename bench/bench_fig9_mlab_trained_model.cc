// Figure 9 (§5.3): rebuild the classifier from the Dispute2014 data itself —
// 20% of the coarsely-labeled samples, *excluding* the (site, ISP) under
// test — and verify the classification trend matches the testbed-trained
// model, showing the technique is not an artifact of testbed training data.
#include "bench_common.h"
#include "ml/decision_tree.h"
#include "ml/split.h"

using namespace ccsig;

namespace {

int timeframe_of(const mlab::NdtObservation& o) {
  const bool jan_feb = o.month == 1 || o.month == 2;
  if (jan_feb && mlab::is_peak_hour(o.hour)) return 0;
  if (!jan_feb && mlab::is_offpeak_hour(o.hour)) return 1;
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 9 — model trained on Dispute2014 itself (leave-combo-out)",
      "Fig. 9 / §5.3: 20% stratified sample, excluding the tested combo");

  const auto obs = bench::standard_dispute2014(opt);

  const std::vector<std::pair<std::string, std::string>> sites = {
      {"Cogent", "LAX"}, {"Cogent", "LGA"}, {"Level3", "ATL"}};
  const std::vector<std::string> isps = {"Comcast", "TimeWarner", "Verizon",
                                         "Cox"};

  std::printf("%-22s %-12s %16s %16s\n", "transit(site)", "isp",
              "Jan-Feb peak", "Mar-Apr offpeak");
  for (const auto& [transit, site] : sites) {
    for (const auto& isp : isps) {
      // Training pool: coarsely-labeled observations from all OTHER combos.
      ml::Dataset pool({"norm_diff", "cov"});
      for (const auto& o : obs) {
        if (o.transit == transit && o.site == site && o.isp == isp) continue;
        if (!o.has_features || !o.passes_filters) continue;
        const auto label = mlab::dispute_coarse_label(o);
        if (!label) continue;
        pool.add({o.norm_diff, o.cov}, *label);
      }
      const auto counts = pool.class_counts();
      if (counts.size() < 2 || counts[0] < 5 || counts[1] < 5) {
        std::printf("%-22s %-12s (insufficient labeled data)\n",
                    (transit + " (" + site + ")").c_str(), isp.c_str());
        continue;
      }
      sim::Rng rng(42);
      const auto [sample, rest] = ml::stratified_sample(pool, 0.2, rng);
      ml::DecisionTree tree(ml::DecisionTree::Params{.max_depth = 4});
      tree.fit(sample);

      int self_count[2] = {0, 0};
      int total[2] = {0, 0};
      for (const auto& o : obs) {
        if (o.transit != transit || o.site != site || o.isp != isp) continue;
        if (!o.has_features || !o.passes_filters) continue;
        const int tf = timeframe_of(o);
        if (tf < 0) continue;
        const double row[] = {o.norm_diff, o.cov};
        ++total[tf];
        self_count[tf] += tree.predict(row) == 1 ? 1 : 0;
      }
      auto pct = [](int a, int b) { return b ? 100.0 * a / b : 0.0; };
      std::printf("%-22s %-12s %11.0f%% (%2d) %11.0f%% (%2d)\n",
                  (transit + " (" + site + ")").c_str(), isp.c_str(),
                  pct(self_count[0], total[0]), total[0],
                  pct(self_count[1], total[1]), total[1]);
    }
  }
  std::printf(
      "\npaper: the M-Lab-trained model reproduces the figure-7 trend "
      "(slightly more conservative about self), showing the classifier is "
      "robust to its training corpus.\n");
  return 0;
}

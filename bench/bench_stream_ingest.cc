// Micro-benchmark of the streaming engine's per-record hot path, with the
// same global operator new/delete counting hook as bench_micro_components.
//
// The engine's bounded-memory claim rests on flows going quiescent: once a
// flow's slow-start stats are frozen and its RTT sampler has stopped,
// every further record must touch only scalars — no map inserts, no
// vector growth, no deferred-ACK churn. The warmup drives one flow through
// exactly that transition (two segments, a retransmission closing slow
// start, and an ACK past the boundary), then the probe pushes records
// through StreamEngine::push and counts heap allocations. The
// `allocs_per_packet` counter is asserted == 0 by `tools/bench_micro.py
// --smoke` (wired into ctest as bench_micro_smoke).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "analysis/seq_unwrap.h"
#include "core/analyzer.h"
#include "sim/time.h"
#include "stream/stream.h"

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};

std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

/// Counts heap allocations across a scope. Deterministic, unlike timings.
class AllocProbe {
 public:
  AllocProbe() : start_(heap_allocs()) {}
  std::uint64_t count() const { return heap_allocs() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ccsig;

constexpr sim::FlowKey kKey{1, 2, 5001, 5002};

analysis::WireRecord data_rec(sim::Time t, std::uint32_t seq) {
  analysis::WireRecord w;
  w.time = t;
  w.key = kKey;
  w.seq32 = seq;
  w.payload_bytes = 1448;
  return w;
}

analysis::WireRecord ack_rec(sim::Time t, std::uint32_t acked) {
  analysis::WireRecord w;
  w.time = t;
  w.key = kKey.reversed();
  w.seq32 = 1;
  w.ack32 = acked;
  w.flags.ack = true;
  return w;
}

/// Drives the flow to the frozen + sampler-stopped state: slow start
/// closed by a retransmission at t=3ms, stats frozen by the first
/// ACK-direction record past the boundary, sampler stopped when that ACK
/// drains from the deferred queue.
void warmup(stream::StreamEngine& engine) {
  engine.push(data_rec(0, 1));
  engine.push(data_rec(1 * sim::kMillisecond, 1449));
  engine.push(ack_rec(2 * sim::kMillisecond, 1449));
  engine.push(data_rec(3 * sim::kMillisecond, 1));  // retx: closes slow start
  engine.push(ack_rec(4 * sim::kMillisecond, 2897));
  engine.push(data_rec(5 * sim::kMillisecond, 2897));
}

void BM_StreamIngestHotPath(benchmark::State& state) {
  const FlowAnalyzer analyzer;
  constexpr int kRecords = 100'000;
  std::uint64_t allocs = 0;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    state.PauseTiming();
    stream::StreamConfig cfg;
    cfg.jobs = 1;
    auto engine = std::make_unique<stream::StreamEngine>(analyzer, cfg);
    warmup(*engine);
    state.ResumeTiming();
    {
      const AllocProbe probe;
      sim::Time t = 10 * sim::kMillisecond;
      std::uint32_t seq = 4345;
      for (int i = 0; i < kRecords / 2; ++i) {
        engine->push(data_rec(t, seq));
        engine->push(ack_rec(t + sim::kMicrosecond, seq + 1448));
        seq += 1448;
        t += 100 * sim::kMicrosecond;
      }
      allocs += probe.count();
    }
    packets += kRecords;
    state.PauseTiming();
    auto reports = engine->finish();
    benchmark::DoNotOptimize(reports);
    engine.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
  state.counters["allocs_per_packet"] =
      static_cast<double>(allocs) / static_cast<double>(packets);
}
BENCHMARK(BM_StreamIngestHotPath);

}  // namespace

BENCHMARK_MAIN();

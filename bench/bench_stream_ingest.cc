// Micro-benchmark of the streaming engine's per-record hot path, with the
// same global operator new/delete counting hook as bench_micro_components.
//
// The engine's bounded-memory claim rests on flows going quiescent: once a
// flow's slow-start stats are frozen and its RTT sampler has stopped,
// every further record must touch only scalars — no map inserts, no
// vector growth, no deferred-ACK churn. The warmup drives one flow through
// exactly that transition (two segments, a retransmission closing slow
// start, and an ACK past the boundary), then the probe pushes records
// through StreamEngine::push and counts heap allocations. The
// `allocs_per_packet` counter is asserted == 0 by `tools/bench_micro.py
// --smoke` (wired into ctest as bench_micro_smoke).
// The same binary also carries the ingest *ladder*: whole-capture passes
// over synthetic headers-only captures at 64 MB / 256 MB / 1 GB, once
// through the PR 5 chunked-read record-at-a-time path and once through the
// batched cursor (streamed and mmap backends). Each rung reports
// packets_per_second, gbps (capture bytes consumed per second), and
// allocs_per_packet over a warm engine, which `tools/bench_micro.py
// --ladder-smoke` (ctest: bench_ingest_ladder_smoke, label `perf`) holds
// to a hard packets/s floor and a hard zero on the mmap rung.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "analysis/from_pcap.h"
#include "analysis/seq_unwrap.h"
#include "core/analyzer.h"
#include "pcap/cursor.h"
#include "pcap/headers.h"
#include "pcap/pcap_file.h"
#include "sim/packet.h"
#include "sim/time.h"
#include "stream/ingest.h"
#include "stream/stream.h"

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};

std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

/// Counts heap allocations across a scope. Deterministic, unlike timings.
class AllocProbe {
 public:
  AllocProbe() : start_(heap_allocs()) {}
  std::uint64_t count() const { return heap_allocs() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ccsig;

constexpr sim::FlowKey kKey{1, 2, 5001, 5002};

analysis::WireRecord data_rec(sim::Time t, std::uint32_t seq) {
  analysis::WireRecord w;
  w.time = t;
  w.key = kKey;
  w.seq32 = seq;
  w.payload_bytes = 1448;
  return w;
}

analysis::WireRecord ack_rec(sim::Time t, std::uint32_t acked) {
  analysis::WireRecord w;
  w.time = t;
  w.key = kKey.reversed();
  w.seq32 = 1;
  w.ack32 = acked;
  w.flags.ack = true;
  return w;
}

/// Drives the flow to the frozen + sampler-stopped state: slow start
/// closed by a retransmission at t=3ms, stats frozen by the first
/// ACK-direction record past the boundary, sampler stopped when that ACK
/// drains from the deferred queue.
void warmup(stream::StreamEngine& engine) {
  engine.push(data_rec(0, 1));
  engine.push(data_rec(1 * sim::kMillisecond, 1449));
  engine.push(ack_rec(2 * sim::kMillisecond, 1449));
  engine.push(data_rec(3 * sim::kMillisecond, 1));  // retx: closes slow start
  engine.push(ack_rec(4 * sim::kMillisecond, 2897));
  engine.push(data_rec(5 * sim::kMillisecond, 2897));
}

void BM_StreamIngestHotPath(benchmark::State& state) {
  const FlowAnalyzer analyzer;
  constexpr int kRecords = 100'000;
  std::uint64_t allocs = 0;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    state.PauseTiming();
    stream::StreamConfig cfg;
    cfg.jobs = 1;
    auto engine = std::make_unique<stream::StreamEngine>(analyzer, cfg);
    warmup(*engine);
    state.ResumeTiming();
    {
      const AllocProbe probe;
      sim::Time t = 10 * sim::kMillisecond;
      std::uint32_t seq = 4345;
      for (int i = 0; i < kRecords / 2; ++i) {
        engine->push(data_rec(t, seq));
        engine->push(ack_rec(t + sim::kMicrosecond, seq + 1448));
        seq += 1448;
        t += 100 * sim::kMicrosecond;
      }
      allocs += probe.count();
    }
    packets += kRecords;
    state.PauseTiming();
    auto reports = engine->finish();
    benchmark::DoNotOptimize(reports);
    engine.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
  state.counters["allocs_per_packet"] =
      static_cast<double>(allocs) / static_cast<double>(packets);
}
BENCHMARK(BM_StreamIngestHotPath);

// ---------------------------------------------------------------------------
// Ingest ladder: whole-capture passes over synthetic pcap files.
// ---------------------------------------------------------------------------

constexpr std::size_t kLadderFlows = 64;

sim::FlowKey ladder_key(std::size_t flow) {
  return sim::FlowKey{static_cast<sim::Address>(1 + flow),
                      static_cast<sim::Address>(10001 + flow),
                      static_cast<std::uint16_t>(40000 + flow), 443};
}

void write_frame(pcap::PcapWriter& out, sim::Time t, const sim::Packet& p) {
  const auto frame = pcap::encode_frame(p);
  out.write(t, frame, static_cast<std::uint32_t>(frame.size()) +
                          p.payload_bytes);
}

sim::Packet data_pkt(const sim::FlowKey& key, std::uint64_t seq) {
  sim::Packet p;
  p.key = key;
  p.seq = seq;
  p.payload_bytes = 1448;
  p.window = 65535;
  return p;
}

sim::Packet ack_pkt(const sim::FlowKey& key, std::uint64_t acked) {
  sim::Packet p;
  p.key = key.reversed();
  p.seq = 1;
  p.ack = acked;
  p.window = 65535;
  p.flags.ack = true;
  return p;
}

struct LadderCapture {
  std::string path;
  std::uint64_t file_bytes = 0;
  std::uint64_t packets = 0;  // TCP records decoded per full pass
};

/// Builds (once per process, cached on disk across runs) a capture of at
/// least `target_bytes`. Every flow is driven through the slow-start-close
/// + freeze transition in its first six records, so the overwhelming bulk
/// of the file exercises the quiescent scalar-only engine path — the
/// steady state a long capture spends its life in.
const LadderCapture& ladder_capture(std::size_t target_mb) {
  static std::map<std::size_t, LadderCapture> cache;
  auto it = cache.find(target_mb);
  if (it != cache.end()) return it->second;

  namespace fs = std::filesystem;
  const std::uint64_t target_bytes = std::uint64_t{target_mb} << 20;
  const char* dir_env = std::getenv("CCSIG_LADDER_DIR");
  const fs::path dir = dir_env ? fs::path(dir_env) : fs::temp_directory_path();
  fs::create_directories(dir);
  const fs::path path =
      dir /
      ("ccsig_ingest_ladder_" + std::to_string(target_mb) + "mb_v2.pcap");

  // Each record is 16 bytes of pcap header + a 54-byte headers-only frame.
  const std::uint64_t per_record = 16 + pcap::kFrameHeaderBytes;
  const std::uint64_t records = (target_bytes + per_record - 1) / per_record;

  std::error_code ec;
  const auto existing = fs::file_size(path, ec);
  if (ec || existing != 24 + records * per_record) {
    pcap::PcapWriter out(path.string(), pcap::kFrameHeaderBytes);
    sim::Time t = 0;
    const auto tick = [&t] { return t += sim::kMicrosecond; };
    // Freeze every flow first (see warmup() above for the transition).
    for (std::size_t f = 0; f < kLadderFlows; ++f) {
      const sim::FlowKey key = ladder_key(f);
      write_frame(out, tick(), data_pkt(key, 1));
      write_frame(out, tick(), data_pkt(key, 1449));
      write_frame(out, tick(), ack_pkt(key, 1449));
      write_frame(out, tick(), data_pkt(key, 1));  // retx closes slow start
      write_frame(out, tick(), ack_pkt(key, 2897));
      write_frame(out, tick(), data_pkt(key, 2897));
    }
    // Steady state: congestion-window bursts round-robin across the
    // flows — each turn is one RTT's worth of traffic, 8 data segments
    // followed by 4 cumulative ACKs, the way a real sender clocked by a
    // real receiver interleaves on the wire.
    std::vector<std::uint64_t> seq(kLadderFlows, 4345);
    std::size_t f = 0;
    while (out.records_written() < records) {
      const sim::FlowKey key = ladder_key(f);
      for (int i = 0; i < 8 && out.records_written() < records; ++i) {
        write_frame(out, tick(), data_pkt(key, seq[f] + i * 1448));
      }
      for (int i = 1; i <= 4 && out.records_written() < records; ++i) {
        write_frame(out, tick(), ack_pkt(key, seq[f] + i * 2 * 1448));
      }
      seq[f] += 8 * 1448;
      f = (f + 1) % kLadderFlows;
    }
    out.flush();
  }

  LadderCapture cap;
  cap.path = path.string();
  cap.file_bytes = fs::file_size(path);
  cap.packets = fs::file_size(path) > 24 ? (cap.file_bytes - 24) / per_record
                                         : 0;
  return cache.emplace(target_mb, std::move(cap)).first->second;
}

/// One untimed batched pass that populates and freezes the flow table, so
/// the measured passes run against a warm engine and the allocation probe
/// sees the steady state rather than 64 one-time flow setups.
void ladder_warm(stream::StreamEngine& engine, const LadderCapture& cap) {
  stream::BatchedIngest ingest(cap.path, pcap::CursorMode::kAuto);
  std::vector<stream::RoutedRecord> batch;
  batch.reserve(512);
  while (ingest.fill(batch, 512) > 0) {
    engine.push_batch(batch);
    batch.clear();
  }
}

stream::StreamConfig ladder_config() {
  stream::StreamConfig cfg;
  cfg.jobs = 1;
  return cfg;
}

/// The PR 5 ingest loop, verbatim: streamed cursor, one record at a time
/// decoded and pushed individually. The comparison baseline for the
/// batched rungs.
void BM_IngestChunkedRead(benchmark::State& state) {
  const LadderCapture& cap = ladder_capture(state.range(0));
  const FlowAnalyzer analyzer;
  stream::StreamEngine engine(analyzer, ladder_config());
  ladder_warm(engine, cap);
  std::uint64_t allocs = 0, packets = 0, bytes = 0;
  for (auto _ : state) {
    pcap::PcapCursor cursor(cap.path, pcap::CursorMode::kStream);
    const AllocProbe probe;
    std::uint64_t n = 0;
    while (const auto rec = cursor.next()) {
      const auto w = analysis::wire_record_from_frame(rec->timestamp,
                                                      rec->data);
      if (!w) continue;
      engine.push(*w);
      ++n;
    }
    allocs += probe.count();
    packets += n;
    bytes += cap.file_bytes;
  }
  auto reports = engine.finish();
  benchmark::DoNotOptimize(reports);
  state.counters["packets_per_second"] =
      benchmark::Counter(static_cast<double>(packets),
                         benchmark::Counter::kIsRate);
  state.counters["gbps"] = benchmark::Counter(
      static_cast<double>(bytes) * 8e-9, benchmark::Counter::kIsRate);
  state.counters["allocs_per_packet"] =
      static_cast<double>(allocs) / static_cast<double>(packets);
}
BENCHMARK(BM_IngestChunkedRead)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void ladder_batched(benchmark::State& state, pcap::CursorMode mode) {
  const LadderCapture& cap = ladder_capture(state.range(0));
  const FlowAnalyzer analyzer;
  const stream::StreamConfig cfg = ladder_config();
  stream::StreamEngine engine(analyzer, cfg);
  ladder_warm(engine, cap);
  std::uint64_t allocs = 0, packets = 0, bytes = 0;
  std::vector<stream::RoutedRecord> batch;
  batch.reserve(cfg.batch_records);
  for (auto _ : state) {
    stream::BatchedIngest ingest(cap.path, mode);
    // The probe starts after the cursor and batch buffer exist: it counts
    // the steady per-record path, which must be allocation-free.
    const AllocProbe probe;
    while (ingest.fill(batch, cfg.batch_records) > 0) {
      engine.push_batch(batch);
      batch.clear();
    }
    allocs += probe.count();
    packets += ingest.records_decoded();
    bytes += cap.file_bytes;
  }
  auto reports = engine.finish();
  benchmark::DoNotOptimize(reports);
  state.counters["packets_per_second"] =
      benchmark::Counter(static_cast<double>(packets),
                         benchmark::Counter::kIsRate);
  state.counters["gbps"] = benchmark::Counter(
      static_cast<double>(bytes) * 8e-9, benchmark::Counter::kIsRate);
  state.counters["allocs_per_packet"] =
      static_cast<double>(allocs) / static_cast<double>(packets);
}

void BM_IngestStreamBatched(benchmark::State& state) {
  ladder_batched(state, pcap::CursorMode::kStream);
}
BENCHMARK(BM_IngestStreamBatched)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_IngestMmapBatched(benchmark::State& state) {
  ladder_batched(state, pcap::CursorMode::kMmap);
}
BENCHMARK(BM_IngestMmapBatched)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// §5.4 accuracy table on TSLP2017: the testbed-trained models detect
// self-induced congestion with >99% accuracy and external congestion with
// 75–85% (threshold-dependent); an M-Lab-trained model detects self >90%
// and external at 100%.
#include "bench_common.h"
#include "ml/decision_tree.h"
#include "ml/split.h"

using namespace ccsig;

namespace {

struct Accuracy {
  int self_correct = 0, self_total = 0;
  int ext_correct = 0, ext_total = 0;
};

Accuracy evaluate(const ml::DecisionTree& tree,
                  const std::vector<mlab::TslpObservation>& obs) {
  Accuracy acc;
  for (const auto& o : obs) {
    const int label = mlab::tslp_label(o);
    if (label < 0) continue;
    const double row[] = {o.norm_diff, o.cov};
    const int pred = tree.predict(row);
    if (label == 1) {
      ++acc.self_total;
      acc.self_correct += pred == 1 ? 1 : 0;
    } else {
      ++acc.ext_total;
      acc.ext_correct += pred == 0 ? 1 : 0;
    }
  }
  return acc;
}

void print_row(const char* model, const Accuracy& acc) {
  auto pct = [](int a, int b) { return b ? 100.0 * a / b : 0.0; };
  std::printf("%-28s %9.1f%% (%3d/%3d) %9.1f%% (%3d/%3d)\n", model,
              pct(acc.self_correct, acc.self_total), acc.self_correct,
              acc.self_total, pct(acc.ext_correct, acc.ext_total),
              acc.ext_correct, acc.ext_total);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("§5.4 table — accuracy on the TSLP2017 dataset",
                      "labels: <15 Mbps & minRTT>30ms external; >20 Mbps & "
                      "minRTT<20ms self");

  const auto obs = bench::standard_tslp2017(opt);
  int labeled_self = 0, labeled_ext = 0;
  for (const auto& o : obs) {
    const int l = mlab::tslp_label(o);
    labeled_self += l == 1 ? 1 : 0;
    labeled_ext += l == 0 ? 1 : 0;
  }
  std::printf("slots: %zu, labeled self: %d, labeled external: %d "
              "(paper: 2573 self, 20 external over 10 weeks)\n\n",
              obs.size(), labeled_self, labeled_ext);

  std::printf("%-28s %20s %20s\n", "model", "self accuracy",
              "external accuracy");
  const auto sweep = bench::standard_sweep(opt);
  for (double threshold : {0.7, 0.8, 0.9}) {
    const ml::DecisionTree tree = bench::train_tree(sweep, threshold);
    char name[64];
    std::snprintf(name, sizeof(name), "testbed model (thr %.1f)", threshold);
    print_row(name, evaluate(tree, obs));
  }

  // The §5.3-style model trained on Dispute2014 coarse labels.
  const auto dispute = bench::standard_dispute2014(opt);
  ml::Dataset pool({"norm_diff", "cov"});
  for (const auto& o : dispute) {
    if (!o.has_features || !o.passes_filters) continue;
    const auto label = mlab::dispute_coarse_label(o);
    if (!label) continue;
    pool.add({o.norm_diff, o.cov}, *label);
  }
  if (pool.num_classes() == 2) {
    sim::Rng rng(7);
    const auto [sample, rest] = ml::stratified_sample(pool, 0.2, rng);
    ml::DecisionTree mlab_tree(ml::DecisionTree::Params{.max_depth = 4});
    mlab_tree.fit(sample);
    print_row("M-Lab-trained model", evaluate(mlab_tree, obs));
  }

  std::printf(
      "\npaper: testbed model 99%%+ self / 75-85%% external (higher "
      "thresholds -> better external); M-Lab model >90%% self / 100%% "
      "external.\n");
  return 0;
}

// Figure 8: median throughput of flows classified self-induced vs external,
// per ISP and timeframe — similar during a sustained interconnect event
// (every flow crosses the congested port), clearly separated otherwise.
#include <algorithm>

#include "bench_common.h"

using namespace ccsig;

namespace {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 8 — median throughput of classified flows",
      "Fig. 8a/8b: self vs external, Jan-Feb vs Mar-Apr, Cogent vs Level3");

  const auto sweep = bench::standard_sweep(opt);
  const ml::DecisionTree tree = bench::train_tree(sweep, 0.8);
  const auto obs = bench::standard_dispute2014(opt);

  for (const std::string transit : {"Cogent", "Level3"}) {
    std::printf("\n(%s sites)\n", transit.c_str());
    std::printf("%-12s %14s %14s %14s %14s\n", "ISP", "JanFeb self",
                "JanFeb ext", "MarApr self", "MarApr ext");
    for (const std::string isp :
         {"Comcast", "TimeWarner", "Verizon", "Cox"}) {
      std::vector<double> tput[2][2];  // [timeframe][class]
      for (const auto& o : obs) {
        if (o.transit != transit || o.isp != isp) continue;
        if (!o.has_features || !o.passes_filters) continue;
        const bool jan_feb = o.month == 1 || o.month == 2;
        const int tf = jan_feb ? 0 : 1;
        // Figure 8 compares flows inside the labeled windows.
        if (jan_feb && !mlab::is_peak_hour(o.hour)) continue;
        if (!jan_feb && !mlab::is_offpeak_hour(o.hour)) continue;
        const double row[] = {o.norm_diff, o.cov};
        tput[tf][tree.predict(row)].push_back(o.throughput_mbps);
      }
      std::printf("%-12s %11.1f M  %11.1f M  %11.1f M  %11.1f M\n",
                  isp.c_str(), median(tput[0][1]), median(tput[0][0]),
                  median(tput[1][1]), median(tput[1][0]));
    }
  }
  std::printf(
      "\npaper: during the Jan-Feb Cogent event the two classes' medians "
      "are close (everyone crosses the congested port); in Mar-Apr — and on "
      "Level3 or Cox throughout — self-classified flows are clearly "
      "faster.\n");
  return 0;
}

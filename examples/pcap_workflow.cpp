// The offline workflow: write a real pcap file from a simulated capture
// (byte-compatible with tcpdump's classic format), then analyze it from
// disk — exactly how the technique would run against existing archives of
// server-side captures (e.g. M-Lab NDT traces).
//
// Build & run:  cmake --build build && ./build/examples/pcap_workflow
#include <cstdio>
#include <filesystem>

#include "core/ccsig.h"
#include "pcap/capture.h"
#include "testbed/experiment.h"

int main() {
  using namespace ccsig;
  const std::string pcap_path = "speedtest_capture.pcap";

  // 1. Run a throughput test on the emulated testbed with tcpdump
  //    attached to the server.
  std::printf("running a throughput test, capturing at the server...\n");
  testbed::TestbedConfig cfg;
  cfg.scenario = testbed::Scenario::kSelfInduced;
  cfg.test_duration = sim::from_seconds(8);
  cfg.seed = 7;
  testbed::TestbedExperiment experiment(cfg);
  pcap::PcapCaptureTap tcpdump(pcap_path);
  experiment.network().node("server1")->add_tap(&tcpdump);
  experiment.run();
  tcpdump.flush();
  std::printf("wrote %llu frames to %s (readable by tcpdump/wireshark)\n",
              static_cast<unsigned long long>(tcpdump.packets_captured()),
              pcap_path.c_str());

  // 2. Later / elsewhere: load the capture from disk and classify every
  //    flow in it.
  std::printf("\nanalyzing %s ...\n", pcap_path.c_str());
  FlowAnalyzer analyzer;
  const auto reports = analyzer.analyze_pcap(pcap_path);
  std::printf("flows found: %zu\n", reports.size());
  for (const auto& report : reports) {
    std::printf("  %s\n", FlowAnalyzer::render(report).c_str());
  }

  // 3. Models are portable too: save, reload, same verdicts.
  const std::string model_path = "my_model.tree";
  analyzer.classifier().save(model_path);
  const auto reloaded = CongestionClassifier::load(model_path);
  std::printf("\nmodel round trip OK; decision logic:\n%s",
              reloaded.describe().c_str());

  std::filesystem::remove(pcap_path);
  std::filesystem::remove(model_path);
  return 0;
}

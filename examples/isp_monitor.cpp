// Interconnect monitoring: a miniature Dispute2014-style campaign.
//
// An operator (or regulator) runs periodic NDT-style tests from user
// vantage points through a transit interconnect across a day, classifies
// each flow, and watches the self-induced fraction collapse during the
// evening peak when the interconnect is congested — the signal the paper
// used to detect the 2014 Cogent dispute without any topology knowledge.
//
// Build & run:  cmake --build build && ./build/examples/isp_monitor
#include <cstdio>

#include "core/ccsig.h"
#include "mlab/dispute2014.h"
#include "mlab/path.h"

int main() {
  using namespace ccsig;

  FlowAnalyzer analyzer;  // pretrained classifier
  sim::Rng rng(2024);

  std::printf("hour-by-hour interconnect health (disputed transit port)\n");
  std::printf("%-5s %-7s %10s %12s %14s %s\n", "hour", "load", "tests",
              "mean Mbps", "%self-induced", "assessment");

  for (int hour = 0; hour < 24; hour += 2) {
    // Demand follows the diurnal curve; the dispute pushes evening peaks
    // past capacity.
    const double load = 1.35 * mlab::diurnal_curve(hour);
    const int tests = 3;
    int self_count = 0, classified = 0;
    double tput_sum = 0;

    for (int t = 0; t < tests; ++t) {
      mlab::PathConfig pc;
      pc.plan_mbps = 25;
      pc.background_load = load;
      pc.seed = rng.next_u64();
      mlab::PathSim path(pc);
      path.warmup(sim::from_seconds(2));
      const mlab::NdtResult ndt = path.run_ndt(sim::from_seconds(8));
      tput_sum += ndt.throughput_bps / 1e6;
      if (!ndt.features) continue;
      ++classified;
      if (analyzer.classifier().classify(*ndt.features).verdict ==
          Verdict::kSelfInducedCongestion) {
        ++self_count;
      }
    }
    const double self_pct =
        classified ? 100.0 * self_count / classified : 0.0;
    const char* verdict = classified == 0 ? "(no usable flows)"
                          : self_pct >= 50.0
                              ? "healthy: users limited by their plans"
                              : "ALERT: external congestion dominates";
    std::printf("%-5d %-7.2f %10d %12.1f %13.0f%% %s\n", hour, load, tests,
                tput_sum / tests, self_pct, verdict);
  }

  std::printf(
      "\nThe evening collapse of the self-induced fraction — with no "
      "knowledge of user plans or topology — is the paper's dispute "
      "detector.\n");
  return 0;
}

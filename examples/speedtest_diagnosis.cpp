// Speed-test diagnosis: the paper's motivating scenario.
//
// A user runs two speed tests against the emulated testbed. The first runs
// when the path is clean — the test saturates their 20 Mbps plan. The
// second runs while the ISP's interconnect is congested — the test comes
// back slow *through no fault of the plan*. The classifier tells the two
// apart from the server-side capture alone, with no knowledge of the
// user's plan.
//
// Build & run:  cmake --build build && ./build/examples/speedtest_diagnosis
#include <cstdio>

#include "core/ccsig.h"
#include "testbed/experiment.h"

namespace {

void run_and_diagnose(const char* label, ccsig::testbed::Scenario scenario,
                      std::uint64_t seed) {
  using namespace ccsig;

  testbed::TestbedConfig cfg;
  cfg.scenario = scenario;
  cfg.access_rate_mbps = 20;  // the user's service plan
  cfg.test_duration = sim::from_seconds(8);
  cfg.warmup = sim::from_seconds(2.5);
  cfg.seed = seed;

  testbed::TestbedExperiment experiment(cfg);
  const testbed::TestResult result = experiment.run();

  std::printf("\n=== %s ===\n", label);
  std::printf("speed test result: %.1f Mbps (plan: %.0f Mbps)\n",
              result.receiver_throughput_bps / 1e6, cfg.access_rate_mbps);

  FlowAnalyzer analyzer;
  const auto reports = analyzer.analyze(experiment.server_trace());
  for (const auto& report : reports) {
    if (!report.classification) {
      std::printf("diagnosis: not enough slow-start RTT samples to judge\n");
      continue;
    }
    std::printf("slow-start signature: NormDiff=%.3f CoV=%.3f (%zu samples)\n",
                report.features->norm_diff, report.features->cov,
                report.features->rtt_samples);
    std::printf("diagnosis: %s (confidence %.2f)\n",
                to_string(report.classification->verdict),
                report.classification->confidence);
    if (report.classification->verdict == Verdict::kSelfInducedCongestion) {
      std::printf("=> the plan itself was the bottleneck. To go faster, "
                  "upgrade the service tier.\n");
    } else {
      std::printf("=> congestion beyond the access link (e.g. an "
                  "interconnect). Upgrading the plan would NOT help; this "
                  "is actionable evidence for the ISP/regulator.\n");
    }
  }
}

}  // namespace

int main() {
  std::printf("ccsig speed-test diagnosis demo\n");
  std::printf("(both tests run against the same 20 Mbps plan)\n");
  run_and_diagnose("Speed test #1: quiet evening",
                   ccsig::testbed::Scenario::kSelfInduced, 11);
  run_and_diagnose("Speed test #2: peering dispute in progress",
                   ccsig::testbed::Scenario::kExternal, 22);
  return 0;
}

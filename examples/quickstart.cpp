// Quickstart: classify what limited a TCP flow, in ~30 lines.
//
// We simulate a bulk download that saturates an idle 20 Mbps access link
// (the classic "you got what you pay for" case), capture it at the server
// like tcpdump would, and ask the bundled pretrained classifier what kind
// of congestion the flow experienced.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "analysis/trace_recorder.h"
#include "core/ccsig.h"
#include "sim/network.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"

int main() {
  using namespace ccsig;

  // A two-node network: server ----(20 Mbps, 20 ms, 100 ms buffer)---- client.
  sim::Network net(/*seed=*/1);
  sim::Node* server = net.add_node("server");
  sim::Node* client = net.add_node("client");
  sim::Link::Config link;
  link.rate_bps = 20e6;
  link.prop_delay = sim::from_millis(20);
  link.buffer_bytes = sim::buffer_bytes_for(20e6, /*buffer_ms=*/100);
  net.connect(server, client, link);

  // tcpdump at the server.
  analysis::TraceRecorder capture;
  server->add_tap(&capture);

  // A 10 MB download.
  const sim::FlowKey key{server->address(), client->address(), 5001, 5002};
  tcp::TcpSink::Config sink_cfg;
  sink_cfg.data_key = key;
  tcp::TcpSink sink(net.sim(), client, sink_cfg);
  tcp::TcpSource::Config source_cfg;
  source_cfg.key = key;
  source_cfg.bytes_to_send = 10'000'000;
  tcp::TcpSource source(net.sim(), server, source_cfg);
  source.start();
  net.sim().run_until(sim::from_seconds(30));

  // Diagnose: was the flow limited by congestion it caused itself (its own
  // bottleneck link), or by a link that was already congested?
  FlowAnalyzer analyzer;  // uses the bundled pretrained model
  for (const FlowReport& report : analyzer.analyze(capture.trace())) {
    std::printf("%s\n", FlowAnalyzer::render(report).c_str());
    if (report.classification &&
        report.classification->verdict == Verdict::kSelfInducedCongestion) {
      std::printf("-> the flow filled an otherwise idle bottleneck: "
                  "upgrading the plan would help.\n");
    } else if (report.classification) {
      std::printf("-> the path was already congested: the user's plan is "
                  "not the limit.\n");
    }
  }
  return 0;
}

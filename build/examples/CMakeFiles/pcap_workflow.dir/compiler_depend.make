# Empty compiler generated dependencies file for pcap_workflow.
# This may be replaced when dependencies are built.

# Empty dependencies file for speedtest_diagnosis.
# This may be replaced when dependencies are built.

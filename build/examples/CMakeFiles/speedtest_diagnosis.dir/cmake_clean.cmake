file(REMOVE_RECURSE
  "CMakeFiles/speedtest_diagnosis.dir/speedtest_diagnosis.cpp.o"
  "CMakeFiles/speedtest_diagnosis.dir/speedtest_diagnosis.cpp.o.d"
  "speedtest_diagnosis"
  "speedtest_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedtest_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mlab_tslp_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mlab_tslp_test.dir/mlab_tslp_test.cc.o"
  "CMakeFiles/mlab_tslp_test.dir/mlab_tslp_test.cc.o.d"
  "mlab_tslp_test"
  "mlab_tslp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlab_tslp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/analysis_throughput_test.dir/analysis_throughput_test.cc.o"
  "CMakeFiles/analysis_throughput_test.dir/analysis_throughput_test.cc.o.d"
  "analysis_throughput_test"
  "analysis_throughput_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_throughput_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

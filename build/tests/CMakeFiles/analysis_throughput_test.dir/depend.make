# Empty dependencies file for analysis_throughput_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for tcp_congestion_control_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tcp_congestion_control_test.dir/tcp_congestion_control_test.cc.o"
  "CMakeFiles/tcp_congestion_control_test.dir/tcp_congestion_control_test.cc.o.d"
  "tcp_congestion_control_test"
  "tcp_congestion_control_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_congestion_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pcap_file_test.dir/pcap_file_test.cc.o"
  "CMakeFiles/pcap_file_test.dir/pcap_file_test.cc.o.d"
  "pcap_file_test"
  "pcap_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tcp_rto_test.dir/tcp_rto_test.cc.o"
  "CMakeFiles/tcp_rto_test.dir/tcp_rto_test.cc.o.d"
  "tcp_rto_test"
  "tcp_rto_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_rto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

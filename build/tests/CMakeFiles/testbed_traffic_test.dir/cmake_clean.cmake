file(REMOVE_RECURSE
  "CMakeFiles/testbed_traffic_test.dir/testbed_traffic_test.cc.o"
  "CMakeFiles/testbed_traffic_test.dir/testbed_traffic_test.cc.o.d"
  "testbed_traffic_test"
  "testbed_traffic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for testbed_traffic_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mlab_dispute_test.dir/mlab_dispute_test.cc.o"
  "CMakeFiles/mlab_dispute_test.dir/mlab_dispute_test.cc.o.d"
  "mlab_dispute_test"
  "mlab_dispute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlab_dispute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

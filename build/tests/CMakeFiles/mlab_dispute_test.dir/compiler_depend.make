# Empty compiler generated dependencies file for mlab_dispute_test.
# This may be replaced when dependencies are built.

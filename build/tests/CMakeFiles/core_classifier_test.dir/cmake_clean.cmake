file(REMOVE_RECURSE
  "CMakeFiles/core_classifier_test.dir/core_classifier_test.cc.o"
  "CMakeFiles/core_classifier_test.dir/core_classifier_test.cc.o.d"
  "core_classifier_test"
  "core_classifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

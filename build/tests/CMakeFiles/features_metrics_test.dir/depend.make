# Empty dependencies file for features_metrics_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/features_metrics_test.dir/features_metrics_test.cc.o"
  "CMakeFiles/features_metrics_test.dir/features_metrics_test.cc.o.d"
  "features_metrics_test"
  "features_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

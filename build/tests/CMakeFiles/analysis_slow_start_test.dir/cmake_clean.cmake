file(REMOVE_RECURSE
  "CMakeFiles/analysis_slow_start_test.dir/analysis_slow_start_test.cc.o"
  "CMakeFiles/analysis_slow_start_test.dir/analysis_slow_start_test.cc.o.d"
  "analysis_slow_start_test"
  "analysis_slow_start_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_slow_start_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for analysis_slow_start_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tcp_recovery_test.dir/tcp_recovery_test.cc.o"
  "CMakeFiles/tcp_recovery_test.dir/tcp_recovery_test.cc.o.d"
  "tcp_recovery_test"
  "tcp_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

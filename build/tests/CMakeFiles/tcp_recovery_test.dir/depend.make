# Empty dependencies file for tcp_recovery_test.
# This may be replaced when dependencies are built.

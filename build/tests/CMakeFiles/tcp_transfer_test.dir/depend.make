# Empty dependencies file for tcp_transfer_test.
# This may be replaced when dependencies are built.

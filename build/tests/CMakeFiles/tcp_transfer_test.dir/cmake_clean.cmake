file(REMOVE_RECURSE
  "CMakeFiles/tcp_transfer_test.dir/tcp_transfer_test.cc.o"
  "CMakeFiles/tcp_transfer_test.dir/tcp_transfer_test.cc.o.d"
  "tcp_transfer_test"
  "tcp_transfer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

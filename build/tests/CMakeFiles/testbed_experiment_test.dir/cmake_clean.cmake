file(REMOVE_RECURSE
  "CMakeFiles/testbed_experiment_test.dir/testbed_experiment_test.cc.o"
  "CMakeFiles/testbed_experiment_test.dir/testbed_experiment_test.cc.o.d"
  "testbed_experiment_test"
  "testbed_experiment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

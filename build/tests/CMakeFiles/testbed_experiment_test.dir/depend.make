# Empty dependencies file for testbed_experiment_test.
# This may be replaced when dependencies are built.

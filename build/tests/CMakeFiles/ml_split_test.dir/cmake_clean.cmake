file(REMOVE_RECURSE
  "CMakeFiles/ml_split_test.dir/ml_split_test.cc.o"
  "CMakeFiles/ml_split_test.dir/ml_split_test.cc.o.d"
  "ml_split_test"
  "ml_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

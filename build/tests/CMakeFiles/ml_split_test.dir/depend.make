# Empty dependencies file for ml_split_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sim_node_test.dir/sim_node_test.cc.o"
  "CMakeFiles/sim_node_test.dir/sim_node_test.cc.o.d"
  "sim_node_test"
  "sim_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/testbed_sweep_test.dir/testbed_sweep_test.cc.o"
  "CMakeFiles/testbed_sweep_test.dir/testbed_sweep_test.cc.o.d"
  "testbed_sweep_test"
  "testbed_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/analysis_flow_trace_test.dir/analysis_flow_trace_test.cc.o"
  "CMakeFiles/analysis_flow_trace_test.dir/analysis_flow_trace_test.cc.o.d"
  "analysis_flow_trace_test"
  "analysis_flow_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_flow_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

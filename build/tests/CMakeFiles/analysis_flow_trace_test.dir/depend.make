# Empty dependencies file for analysis_flow_trace_test.
# This may be replaced when dependencies are built.

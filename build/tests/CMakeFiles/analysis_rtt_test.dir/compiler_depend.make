# Empty compiler generated dependencies file for analysis_rtt_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/analysis_rtt_test.dir/analysis_rtt_test.cc.o"
  "CMakeFiles/analysis_rtt_test.dir/analysis_rtt_test.cc.o.d"
  "analysis_rtt_test"
  "analysis_rtt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_rtt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

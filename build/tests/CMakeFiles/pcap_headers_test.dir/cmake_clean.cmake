file(REMOVE_RECURSE
  "CMakeFiles/pcap_headers_test.dir/pcap_headers_test.cc.o"
  "CMakeFiles/pcap_headers_test.dir/pcap_headers_test.cc.o.d"
  "pcap_headers_test"
  "pcap_headers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_headers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

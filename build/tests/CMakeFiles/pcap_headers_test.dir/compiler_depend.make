# Empty compiler generated dependencies file for pcap_headers_test.
# This may be replaced when dependencies are built.

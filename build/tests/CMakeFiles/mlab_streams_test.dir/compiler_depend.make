# Empty compiler generated dependencies file for mlab_streams_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mlab_streams_test.dir/mlab_streams_test.cc.o"
  "CMakeFiles/mlab_streams_test.dir/mlab_streams_test.cc.o.d"
  "mlab_streams_test"
  "mlab_streams_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlab_streams_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

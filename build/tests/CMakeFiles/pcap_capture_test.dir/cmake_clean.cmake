file(REMOVE_RECURSE
  "CMakeFiles/pcap_capture_test.dir/pcap_capture_test.cc.o"
  "CMakeFiles/pcap_capture_test.dir/pcap_capture_test.cc.o.d"
  "pcap_capture_test"
  "pcap_capture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_capture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

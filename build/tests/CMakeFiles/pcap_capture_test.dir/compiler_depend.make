# Empty compiler generated dependencies file for pcap_capture_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for sim_packet_test.
# This may be replaced when dependencies are built.

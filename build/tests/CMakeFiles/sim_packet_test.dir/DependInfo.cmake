
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_packet_test.cc" "tests/CMakeFiles/sim_packet_test.dir/sim_packet_test.cc.o" "gcc" "tests/CMakeFiles/sim_packet_test.dir/sim_packet_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccsig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/ccsig_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/mlab/CMakeFiles/ccsig_mlab.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/ccsig_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/ccsig_features.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ccsig_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/ccsig_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ccsig_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccsig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ccsig_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sim_packet_test.dir/sim_packet_test.cc.o"
  "CMakeFiles/sim_packet_test.dir/sim_packet_test.cc.o.d"
  "sim_packet_test"
  "sim_packet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

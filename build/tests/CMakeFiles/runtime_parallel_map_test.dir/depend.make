# Empty dependencies file for runtime_parallel_map_test.
# This may be replaced when dependencies are built.

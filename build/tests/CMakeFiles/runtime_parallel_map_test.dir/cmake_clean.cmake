file(REMOVE_RECURSE
  "CMakeFiles/runtime_parallel_map_test.dir/runtime_parallel_map_test.cc.o"
  "CMakeFiles/runtime_parallel_map_test.dir/runtime_parallel_map_test.cc.o.d"
  "runtime_parallel_map_test"
  "runtime_parallel_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_parallel_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

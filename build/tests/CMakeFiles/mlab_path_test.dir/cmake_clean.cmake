file(REMOVE_RECURSE
  "CMakeFiles/mlab_path_test.dir/mlab_path_test.cc.o"
  "CMakeFiles/mlab_path_test.dir/mlab_path_test.cc.o.d"
  "mlab_path_test"
  "mlab_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlab_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mlab_path_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ccsig_mlab.dir/dispute2014.cc.o"
  "CMakeFiles/ccsig_mlab.dir/dispute2014.cc.o.d"
  "CMakeFiles/ccsig_mlab.dir/path.cc.o"
  "CMakeFiles/ccsig_mlab.dir/path.cc.o.d"
  "CMakeFiles/ccsig_mlab.dir/tslp.cc.o"
  "CMakeFiles/ccsig_mlab.dir/tslp.cc.o.d"
  "CMakeFiles/ccsig_mlab.dir/tslp2017.cc.o"
  "CMakeFiles/ccsig_mlab.dir/tslp2017.cc.o.d"
  "libccsig_mlab.a"
  "libccsig_mlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsig_mlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ccsig_mlab.
# This may be replaced when dependencies are built.

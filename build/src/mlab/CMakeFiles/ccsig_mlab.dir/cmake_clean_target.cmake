file(REMOVE_RECURSE
  "libccsig_mlab.a"
)

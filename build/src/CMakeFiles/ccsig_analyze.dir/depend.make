# Empty dependencies file for ccsig_analyze.
# This may be replaced when dependencies are built.

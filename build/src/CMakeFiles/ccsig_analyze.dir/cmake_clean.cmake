file(REMOVE_RECURSE
  "CMakeFiles/ccsig_analyze.dir/__/tools/ccsig_analyze.cc.o"
  "CMakeFiles/ccsig_analyze.dir/__/tools/ccsig_analyze.cc.o.d"
  "ccsig_analyze"
  "ccsig_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsig_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for train_pretrained.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/train_pretrained.dir/__/tools/train_pretrained.cc.o"
  "CMakeFiles/train_pretrained.dir/__/tools/train_pretrained.cc.o.d"
  "train_pretrained"
  "train_pretrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_pretrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ccsig_run_testbed.dir/__/tools/ccsig_testbed.cc.o"
  "CMakeFiles/ccsig_run_testbed.dir/__/tools/ccsig_testbed.cc.o.d"
  "ccsig_run_testbed"
  "ccsig_run_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsig_run_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

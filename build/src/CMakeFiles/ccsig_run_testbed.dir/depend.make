# Empty dependencies file for ccsig_run_testbed.
# This may be replaced when dependencies are built.

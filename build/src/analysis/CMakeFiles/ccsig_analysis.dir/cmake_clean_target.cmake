file(REMOVE_RECURSE
  "libccsig_analysis.a"
)

# Empty dependencies file for ccsig_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ccsig_analysis.dir/flow_trace.cc.o"
  "CMakeFiles/ccsig_analysis.dir/flow_trace.cc.o.d"
  "CMakeFiles/ccsig_analysis.dir/from_pcap.cc.o"
  "CMakeFiles/ccsig_analysis.dir/from_pcap.cc.o.d"
  "CMakeFiles/ccsig_analysis.dir/rtt_estimator.cc.o"
  "CMakeFiles/ccsig_analysis.dir/rtt_estimator.cc.o.d"
  "CMakeFiles/ccsig_analysis.dir/slow_start.cc.o"
  "CMakeFiles/ccsig_analysis.dir/slow_start.cc.o.d"
  "CMakeFiles/ccsig_analysis.dir/throughput.cc.o"
  "CMakeFiles/ccsig_analysis.dir/throughput.cc.o.d"
  "libccsig_analysis.a"
  "libccsig_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsig_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/flow_trace.cc" "src/analysis/CMakeFiles/ccsig_analysis.dir/flow_trace.cc.o" "gcc" "src/analysis/CMakeFiles/ccsig_analysis.dir/flow_trace.cc.o.d"
  "/root/repo/src/analysis/from_pcap.cc" "src/analysis/CMakeFiles/ccsig_analysis.dir/from_pcap.cc.o" "gcc" "src/analysis/CMakeFiles/ccsig_analysis.dir/from_pcap.cc.o.d"
  "/root/repo/src/analysis/rtt_estimator.cc" "src/analysis/CMakeFiles/ccsig_analysis.dir/rtt_estimator.cc.o" "gcc" "src/analysis/CMakeFiles/ccsig_analysis.dir/rtt_estimator.cc.o.d"
  "/root/repo/src/analysis/slow_start.cc" "src/analysis/CMakeFiles/ccsig_analysis.dir/slow_start.cc.o" "gcc" "src/analysis/CMakeFiles/ccsig_analysis.dir/slow_start.cc.o.d"
  "/root/repo/src/analysis/throughput.cc" "src/analysis/CMakeFiles/ccsig_analysis.dir/throughput.cc.o" "gcc" "src/analysis/CMakeFiles/ccsig_analysis.dir/throughput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccsig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/ccsig_pcap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for ccsig_runtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ccsig_runtime.dir/thread_pool.cc.o"
  "CMakeFiles/ccsig_runtime.dir/thread_pool.cc.o.d"
  "libccsig_runtime.a"
  "libccsig_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsig_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

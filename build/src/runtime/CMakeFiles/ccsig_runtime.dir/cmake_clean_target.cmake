file(REMOVE_RECURSE
  "libccsig_runtime.a"
)

# Empty compiler generated dependencies file for ccsig_testbed.
# This may be replaced when dependencies are built.

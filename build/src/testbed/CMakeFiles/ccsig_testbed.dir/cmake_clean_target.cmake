file(REMOVE_RECURSE
  "libccsig_testbed.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ccsig_testbed.dir/experiment.cc.o"
  "CMakeFiles/ccsig_testbed.dir/experiment.cc.o.d"
  "CMakeFiles/ccsig_testbed.dir/labeler.cc.o"
  "CMakeFiles/ccsig_testbed.dir/labeler.cc.o.d"
  "CMakeFiles/ccsig_testbed.dir/sweep.cc.o"
  "CMakeFiles/ccsig_testbed.dir/sweep.cc.o.d"
  "CMakeFiles/ccsig_testbed.dir/traffic.cc.o"
  "CMakeFiles/ccsig_testbed.dir/traffic.cc.o.d"
  "libccsig_testbed.a"
  "libccsig_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsig_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ccsig_ml.
# This may be replaced when dependencies are built.

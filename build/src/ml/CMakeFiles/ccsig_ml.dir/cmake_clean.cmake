file(REMOVE_RECURSE
  "CMakeFiles/ccsig_ml.dir/decision_tree.cc.o"
  "CMakeFiles/ccsig_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/ccsig_ml.dir/metrics.cc.o"
  "CMakeFiles/ccsig_ml.dir/metrics.cc.o.d"
  "CMakeFiles/ccsig_ml.dir/random_forest.cc.o"
  "CMakeFiles/ccsig_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/ccsig_ml.dir/split.cc.o"
  "CMakeFiles/ccsig_ml.dir/split.cc.o.d"
  "libccsig_ml.a"
  "libccsig_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsig_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

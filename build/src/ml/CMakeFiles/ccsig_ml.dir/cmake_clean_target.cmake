file(REMOVE_RECURSE
  "libccsig_ml.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ccsig_sim.dir/link.cc.o"
  "CMakeFiles/ccsig_sim.dir/link.cc.o.d"
  "CMakeFiles/ccsig_sim.dir/network.cc.o"
  "CMakeFiles/ccsig_sim.dir/network.cc.o.d"
  "CMakeFiles/ccsig_sim.dir/node.cc.o"
  "CMakeFiles/ccsig_sim.dir/node.cc.o.d"
  "libccsig_sim.a"
  "libccsig_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsig_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ccsig_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libccsig_sim.a"
)

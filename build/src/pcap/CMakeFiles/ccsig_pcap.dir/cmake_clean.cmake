file(REMOVE_RECURSE
  "CMakeFiles/ccsig_pcap.dir/headers.cc.o"
  "CMakeFiles/ccsig_pcap.dir/headers.cc.o.d"
  "CMakeFiles/ccsig_pcap.dir/pcap_file.cc.o"
  "CMakeFiles/ccsig_pcap.dir/pcap_file.cc.o.d"
  "libccsig_pcap.a"
  "libccsig_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsig_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

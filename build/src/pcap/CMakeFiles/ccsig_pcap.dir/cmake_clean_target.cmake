file(REMOVE_RECURSE
  "libccsig_pcap.a"
)

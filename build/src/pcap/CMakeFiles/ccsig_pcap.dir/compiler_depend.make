# Empty compiler generated dependencies file for ccsig_pcap.
# This may be replaced when dependencies are built.

# Empty dependencies file for ccsig_tcp.
# This may be replaced when dependencies are built.

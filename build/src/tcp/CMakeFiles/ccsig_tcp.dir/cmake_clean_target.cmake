file(REMOVE_RECURSE
  "libccsig_tcp.a"
)

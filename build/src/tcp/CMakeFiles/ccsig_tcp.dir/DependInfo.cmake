
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/bbr_lite.cc" "src/tcp/CMakeFiles/ccsig_tcp.dir/bbr_lite.cc.o" "gcc" "src/tcp/CMakeFiles/ccsig_tcp.dir/bbr_lite.cc.o.d"
  "/root/repo/src/tcp/congestion_control.cc" "src/tcp/CMakeFiles/ccsig_tcp.dir/congestion_control.cc.o" "gcc" "src/tcp/CMakeFiles/ccsig_tcp.dir/congestion_control.cc.o.d"
  "/root/repo/src/tcp/cubic.cc" "src/tcp/CMakeFiles/ccsig_tcp.dir/cubic.cc.o" "gcc" "src/tcp/CMakeFiles/ccsig_tcp.dir/cubic.cc.o.d"
  "/root/repo/src/tcp/reno.cc" "src/tcp/CMakeFiles/ccsig_tcp.dir/reno.cc.o" "gcc" "src/tcp/CMakeFiles/ccsig_tcp.dir/reno.cc.o.d"
  "/root/repo/src/tcp/tcp_sink.cc" "src/tcp/CMakeFiles/ccsig_tcp.dir/tcp_sink.cc.o" "gcc" "src/tcp/CMakeFiles/ccsig_tcp.dir/tcp_sink.cc.o.d"
  "/root/repo/src/tcp/tcp_source.cc" "src/tcp/CMakeFiles/ccsig_tcp.dir/tcp_source.cc.o" "gcc" "src/tcp/CMakeFiles/ccsig_tcp.dir/tcp_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccsig_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

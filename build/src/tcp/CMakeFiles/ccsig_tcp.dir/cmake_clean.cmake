file(REMOVE_RECURSE
  "CMakeFiles/ccsig_tcp.dir/bbr_lite.cc.o"
  "CMakeFiles/ccsig_tcp.dir/bbr_lite.cc.o.d"
  "CMakeFiles/ccsig_tcp.dir/congestion_control.cc.o"
  "CMakeFiles/ccsig_tcp.dir/congestion_control.cc.o.d"
  "CMakeFiles/ccsig_tcp.dir/cubic.cc.o"
  "CMakeFiles/ccsig_tcp.dir/cubic.cc.o.d"
  "CMakeFiles/ccsig_tcp.dir/reno.cc.o"
  "CMakeFiles/ccsig_tcp.dir/reno.cc.o.d"
  "CMakeFiles/ccsig_tcp.dir/tcp_sink.cc.o"
  "CMakeFiles/ccsig_tcp.dir/tcp_sink.cc.o.d"
  "CMakeFiles/ccsig_tcp.dir/tcp_source.cc.o"
  "CMakeFiles/ccsig_tcp.dir/tcp_source.cc.o.d"
  "libccsig_tcp.a"
  "libccsig_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsig_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

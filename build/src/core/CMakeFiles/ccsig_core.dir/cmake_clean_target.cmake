file(REMOVE_RECURSE
  "libccsig_core.a"
)

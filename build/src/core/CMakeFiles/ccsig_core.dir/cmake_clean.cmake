file(REMOVE_RECURSE
  "CMakeFiles/ccsig_core.dir/analyzer.cc.o"
  "CMakeFiles/ccsig_core.dir/analyzer.cc.o.d"
  "CMakeFiles/ccsig_core.dir/classifier.cc.o"
  "CMakeFiles/ccsig_core.dir/classifier.cc.o.d"
  "libccsig_core.a"
  "libccsig_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsig_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

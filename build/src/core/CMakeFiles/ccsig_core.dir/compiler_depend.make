# Empty compiler generated dependencies file for ccsig_core.
# This may be replaced when dependencies are built.

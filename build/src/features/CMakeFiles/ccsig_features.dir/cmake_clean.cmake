file(REMOVE_RECURSE
  "CMakeFiles/ccsig_features.dir/extractor.cc.o"
  "CMakeFiles/ccsig_features.dir/extractor.cc.o.d"
  "CMakeFiles/ccsig_features.dir/metrics.cc.o"
  "CMakeFiles/ccsig_features.dir/metrics.cc.o.d"
  "libccsig_features.a"
  "libccsig_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsig_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/extractor.cc" "src/features/CMakeFiles/ccsig_features.dir/extractor.cc.o" "gcc" "src/features/CMakeFiles/ccsig_features.dir/extractor.cc.o.d"
  "/root/repo/src/features/metrics.cc" "src/features/CMakeFiles/ccsig_features.dir/metrics.cc.o" "gcc" "src/features/CMakeFiles/ccsig_features.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ccsig_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/ccsig_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccsig_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

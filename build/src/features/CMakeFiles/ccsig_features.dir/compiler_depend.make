# Empty compiler generated dependencies file for ccsig_features.
# This may be replaced when dependencies are built.

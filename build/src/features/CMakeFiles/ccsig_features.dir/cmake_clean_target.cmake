file(REMOVE_RECURSE
  "libccsig_features.a"
)

# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_micro_smoke "/root/.pyenv/shims/python3" "/root/repo/tools/bench_micro.py" "--bench-bin" "/root/repo/build/bench/bench_micro_components" "--smoke")
set_tests_properties(bench_micro_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/bench_table_multiplexing.dir/bench_table_multiplexing.cc.o"
  "CMakeFiles/bench_table_multiplexing.dir/bench_table_multiplexing.cc.o.d"
  "bench_table_multiplexing"
  "bench_table_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

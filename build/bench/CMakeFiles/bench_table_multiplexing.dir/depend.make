# Empty dependencies file for bench_table_multiplexing.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig8_throughput_by_class.
# This may be replaced when dependencies are built.

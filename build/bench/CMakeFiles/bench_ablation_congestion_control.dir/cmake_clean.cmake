file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_congestion_control.dir/bench_ablation_congestion_control.cc.o"
  "CMakeFiles/bench_ablation_congestion_control.dir/bench_ablation_congestion_control.cc.o.d"
  "bench_ablation_congestion_control"
  "bench_ablation_congestion_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_congestion_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

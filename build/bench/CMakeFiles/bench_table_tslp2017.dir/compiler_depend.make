# Empty compiler generated dependencies file for bench_table_tslp2017.
# This may be replaced when dependencies are built.

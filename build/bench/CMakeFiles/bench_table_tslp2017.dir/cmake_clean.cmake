file(REMOVE_RECURSE
  "CMakeFiles/bench_table_tslp2017.dir/bench_table_tslp2017.cc.o"
  "CMakeFiles/bench_table_tslp2017.dir/bench_table_tslp2017.cc.o.d"
  "bench_table_tslp2017"
  "bench_table_tslp2017.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_tslp2017.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

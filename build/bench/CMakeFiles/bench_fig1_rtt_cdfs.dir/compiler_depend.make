# Empty compiler generated dependencies file for bench_fig1_rtt_cdfs.
# This may be replaced when dependencies are built.

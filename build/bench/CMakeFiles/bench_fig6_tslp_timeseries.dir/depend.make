# Empty dependencies file for bench_fig6_tslp_timeseries.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig9_mlab_trained_model.
# This may be replaced when dependencies are built.

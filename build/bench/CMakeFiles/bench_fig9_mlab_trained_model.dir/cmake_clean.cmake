file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_mlab_trained_model.dir/bench_fig9_mlab_trained_model.cc.o"
  "CMakeFiles/bench_fig9_mlab_trained_model.dir/bench_fig9_mlab_trained_model.cc.o.d"
  "bench_fig9_mlab_trained_model"
  "bench_fig9_mlab_trained_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_mlab_trained_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

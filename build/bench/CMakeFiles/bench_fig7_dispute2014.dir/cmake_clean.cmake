file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dispute2014.dir/bench_fig7_dispute2014.cc.o"
  "CMakeFiles/bench_fig7_dispute2014.dir/bench_fig7_dispute2014.cc.o.d"
  "bench_fig7_dispute2014"
  "bench_fig7_dispute2014.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dispute2014.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

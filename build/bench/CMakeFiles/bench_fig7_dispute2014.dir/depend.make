# Empty dependencies file for bench_fig7_dispute2014.
# This may be replaced when dependencies are built.
